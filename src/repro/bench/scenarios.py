"""The paper's experimental configurations, centralized.

Every figure's parameters (Sect. V) are defined here once so the
benchmark drivers, integration tests, and examples cannot drift apart.
All SCs use ``mu = 1`` and ``Q = 0.2`` unless a figure says otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.small_cloud import FederationScenario, SmallCloud


@dataclass(frozen=True)
class Fig5Config:
    """One curve of Fig. 5: a single SC at a given size and SLA."""

    vms: int
    sla_bound: float

    @property
    def label(self) -> str:
        """Legend label used in tables."""
        return f"N={self.vms}, Q={self.sla_bound}"


def fig5_configurations() -> list[Fig5Config]:
    """The four curves of Fig. 5: N in {10, 100} x Q in {0.2, 0.5}."""
    return [
        Fig5Config(vms=10, sla_bound=0.2),
        Fig5Config(vms=10, sla_bound=0.5),
        Fig5Config(vms=100, sla_bound=0.2),
        Fig5Config(vms=100, sla_bound=0.5),
    ]


def fig6_2sc_scenario(target_share: int, target_rate: float) -> FederationScenario:
    """Fig. 6a/6b: fixed SC (lambda=7, S=5, N=10) plus a swept target SC.

    The target SC is last, which is where the hierarchical approximate
    model evaluates it.
    """
    fixed = SmallCloud(name="fixed", vms=10, arrival_rate=7.0, shared_vms=5)
    target = SmallCloud(
        name="target", vms=10, arrival_rate=target_rate, shared_vms=target_share
    )
    return FederationScenario((fixed, target))


def fig6_10sc_scenario(target_share: int, target_rate: float) -> FederationScenario:
    """Fig. 6c/6d: nine fixed SCs plus the swept target SC.

    Fixed shares (3,3,3,2,2,2,1,1,1) with arrival rates
    (7,7,7,8,8,8,9,9,9), as in the paper.
    """
    shares = (3, 3, 3, 2, 2, 2, 1, 1, 1)
    rates = (7.0, 7.0, 7.0, 8.0, 8.0, 8.0, 9.0, 9.0, 9.0)
    fixed = tuple(
        SmallCloud(name=f"fixed{i}", vms=10, arrival_rate=rate, shared_vms=share)
        for i, (share, rate) in enumerate(zip(shares, rates))
    )
    target = SmallCloud(
        name="target", vms=10, arrival_rate=target_rate, shared_vms=target_share
    )
    return FederationScenario(fixed + (target,))


def fig6_100vm_scenario(other_rate: float, target_rate: float) -> FederationScenario:
    """Fig. 6e/6f: two 100-VM SCs, both sharing S=10."""
    other = SmallCloud(name="other", vms=100, arrival_rate=other_rate, shared_vms=10)
    target = SmallCloud(
        name="target", vms=100, arrival_rate=target_rate, shared_vms=10
    )
    return FederationScenario((other, target))


#: The paper's three Fig. 7 load mixes (utilization -> arrival rate at
#: N=10, mu=1: the paper reports the *achieved* no-sharing utilization,
#: which for these SLA settings is essentially lambda/N).
FIG7_LOADS = {
    "spread": (5.8, 7.3, 8.4),  # Fig. 7a/7b: rho = 0.58, 0.73, 0.84
    "high": (7.3, 7.9, 8.4),  # Fig. 7c:    rho = 0.73, 0.79, 0.84
    "medium": (4.9, 5.8, 6.6),  # Fig. 7d:    rho = 0.49, 0.58, 0.66
}


def fig7_scenario(loads: str = "spread") -> FederationScenario:
    """A 3-SC federation with one of the paper's Fig. 7 load mixes.

    The public-cloud price is set to 10 per VM-unit-time.  The market
    knob is the *ratio* ``C^G/C^P`` (the absolute scale is arbitrary in
    Eq. 1), but the scale does enter Eq. 3 at ``alpha = 1`` through
    ``log U``: this price level keeps equilibrium utilities above 1 so
    the proportional-fairness welfare is positive and its efficiency
    ratio meaningful, mirroring the paper's plotted curves.
    """
    rates = FIG7_LOADS[loads]
    return FederationScenario(
        tuple(
            SmallCloud(
                name=f"sc{i + 1}",
                vms=10,
                arrival_rate=rate,
                public_price=10.0,
                federation_price=5.0,
            )
            for i, rate in enumerate(rates)
        )
    )


def fig8_perf_scenario(n_clouds: int, shared: int = 2) -> FederationScenario:
    """Fig. 8a: K SCs with 10 VMs each, sharing ``shared`` VMs apiece."""
    return FederationScenario(
        tuple(
            SmallCloud(
                name=f"sc{i + 1}",
                vms=10,
                arrival_rate=7.0 + 0.2 * i,
                shared_vms=shared,
            )
            for i in range(n_clouds)
        )
    )


def fig8_game_scenario(n_clouds: int, vms: int = 20) -> FederationScenario:
    """Fig. 8b: K SCs for the game-convergence timing.

    The paper uses 100-VM SCs; the default here scales to 20 VMs so the
    sweep finishes on a laptop (see DESIGN.md substitutions) — pass
    ``vms=100`` for the paper's size.  Loads are staggered between 55%
    and 90% utilization.
    """
    return FederationScenario(
        tuple(
            SmallCloud(
                name=f"sc{i + 1}",
                vms=vms,
                arrival_rate=vms * (0.55 + 0.35 * i / max(n_clouds - 1, 1)),
            )
            for i in range(n_clouds)
        )
    )


def kscale_scenario(
    n_clouds: int, sharers: int = 4, vms: int = 3
) -> FederationScenario:
    """A K-scaling federation: chain length grows, level pools do not.

    Only the first ``sharers`` SCs share (one VM each), so every
    hierarchical level's pool stays bounded by ``sharers`` while the
    chain deepens with K — the regime the sharded and incremental
    evaluation paths exist for.  Loads are staggered slightly so no two
    per-SC specs coincide (each level's memo key stays distinct).
    """
    return FederationScenario(
        tuple(
            SmallCloud(
                name=f"sc{i + 1:03d}",
                vms=vms,
                arrival_rate=0.5 * vms + 0.01 * (i % 7),
                sla_bound=3.0,
                shared_vms=1 if i < sharers else 0,
            )
            for i in range(n_clouds)
        )
    )
