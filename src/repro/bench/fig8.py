"""Fig. 8: computational overhead of the two models.

- 8a: wall-clock time of one approximate-model target evaluation as the
  federation grows from 2 to 10 SCs (each with 10 VMs, sharing 2).  The
  paper's claim is the *growth shape*: the hierarchy scales (roughly
  linearly in K through the pool size) where the exact chain explodes.
- 8b: rounds of Algorithm 1 until equilibrium as the number of SCs grows
  (2–8) and as the Tabu search distance varies.  The paper's claim:
  iterations *decrease* with more SCs (each decision change matters less
  in a bigger federation) and the search distance matters more in small
  federations.

Absolute times are machine-specific (the substitution table in DESIGN.md);
the shapes are what the benchmarks assert.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

from repro.bench.scenarios import fig8_game_scenario, fig8_perf_scenario
from repro.bench.tables import render_table
from repro.core.framework import SCShare
from repro.game.tabu import TabuSearch
from repro.perf.approximate import ApproximateModel
from repro.perf.base import PerformanceModel
from repro.perf.pooled import PooledModel

if TYPE_CHECKING:
    from repro.runtime.executor import Executor


@dataclass(frozen=True)
class Fig8aRow:
    """Approximate-model cost at one federation size."""

    n_clouds: int
    states: int
    seconds: float


@dataclass(frozen=True)
class Fig8bRow:
    """Game convergence at one federation size / search distance."""

    n_clouds: int
    tabu_distance: int
    iterations: int
    converged: bool
    model_evaluations: int


def run_fig8a(sizes: tuple[int, ...] = (2, 3, 4, 6, 8, 10)) -> list[Fig8aRow]:
    """Time one target evaluation of the approximate model per size."""
    rows = []
    for k in sizes:
        scenario = fig8_perf_scenario(k)
        model = ApproximateModel()
        start = time.perf_counter()
        level = model._build_chain(scenario)  # noqa: SLF001 - measured on purpose
        elapsed = time.perf_counter() - start
        rows.append(
            Fig8aRow(n_clouds=k, states=len(level.space), seconds=elapsed)
        )
    return rows


def run_fig8b(
    sizes: tuple[int, ...] = (2, 3, 4, 6, 8),
    tabu_distances: tuple[int, ...] = (1, 2, 4),
    gamma: float = 0.0,
    price_ratio: float = 0.5,
    vms: int = 20,
    model: PerformanceModel | None = None,
    executor: "Executor | None" = None,
    cache_dir: str | Path | None = None,
) -> list[Fig8bRow]:
    """Measure game rounds to equilibrium per federation size.

    The search-distance runs at one federation size share a parameter
    cache (and, with ``cache_dir``, a persistent one): Tabu variants
    visit overlapping sharing vectors, and the solved parameters do not
    depend on the search configuration.
    """
    model = model if model is not None else PooledModel()
    rows = []
    for k in sizes:
        scenario = fig8_game_scenario(k, vms=vms).with_price_ratio(price_ratio)
        if cache_dir is None:
            params_cache: dict = {}
        else:
            from repro.runtime.cache import DiskParamsCache

            params_cache = DiskParamsCache(cache_dir, scenario, model)
        for distance in tabu_distances:
            runner = SCShare(
                scenario,
                model=model,
                gamma=gamma,
                best_response="tabu",
                tabu=TabuSearch(distance=distance),
                params_cache=params_cache,
                executor=executor,
            )
            result = runner.game.run()
            rows.append(
                Fig8bRow(
                    n_clouds=k,
                    tabu_distance=distance,
                    iterations=result.iterations,
                    converged=result.converged,
                    model_evaluations=result.model_evaluations,
                )
            )
    return rows


def render_8a(rows: list[Fig8aRow]) -> str:
    """Render the Fig. 8a timing table."""
    return render_table(
        ["K", "target chain states", "seconds"],
        [(r.n_clouds, r.states, r.seconds) for r in rows],
        title="Fig. 8a — approximate model computation time vs federation size",
    )


def render_8b(rows: list[Fig8bRow]) -> str:
    """Render the Fig. 8b convergence table."""
    return render_table(
        ["K", "tabu distance", "iterations", "converged", "model evals"],
        [
            (r.n_clouds, r.tabu_distance, r.iterations, r.converged, r.model_evaluations)
            for r in rows
        ],
        title="Fig. 8b — game iterations to equilibrium vs federation size",
    )
