"""The scenario library: paper figures + generated corpus, one registry.

Two sources feed the library:

- :func:`figure_scenarios` — the paper's own experimental configurations
  (already centralized in :mod:`repro.bench.scenarios`), re-expressed as
  :class:`~repro.scenarios.schema.ScenarioSpec` entries under the
  ``paper`` family.  The bench constructors stay the single source of
  truth; this module only wraps them, so the old entry points keep
  working unchanged.
- :func:`~repro.scenarios.generator.generate_library` — the 120-scenario
  generated corpus.

``resolve()`` is the one lookup every CLI shares: a path to a scenario
JSON file, or a library name.  The committed ``manifest.json`` (package
data) pins the library's content digest; :func:`check_manifest` is the
reproducibility gate CI runs.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.analysis.sanitize import InvariantViolation
from repro.bench import scenarios as figures
from repro.core.small_cloud import FederationScenario
from repro.runtime.seeding import derive_seed
from repro.scenarios.generator import (
    DEFAULT_SEED,
    generate_library,
    library_digest,
    library_manifest,
)
from repro.scenarios.schema import RunConfig, ScenarioSpec, load_spec

#: The committed manifest pinning the library digest (package data).
MANIFEST_PATH = Path(__file__).with_name("manifest.json")


def spec_from_federation(
    name: str,
    federation: FederationScenario,
    family: str = "custom",
    description: str = "",
    seed: int = DEFAULT_SEED,
    model: str = "pooled",
    strategy_step: int | None = None,
    gamma: float = 0.0,
) -> ScenarioSpec:
    """Wrap a plain :class:`FederationScenario` as a library spec.

    Demand defaults to Poisson/exponential at the SCs' own rates, and the
    strategy grid is capped at roughly six points per SC unless a step is
    given explicitly.
    """
    max_vms = max(c.vms for c in federation)
    return ScenarioSpec(
        name=name,
        family=family,
        description=description,
        clouds=tuple(federation),
        run=RunConfig(
            seed=derive_seed(seed, name),
            model=model,
            gamma=gamma,
            strategy_step=strategy_step if strategy_step is not None else max(1, max_vms // 5),
        ),
    )


def figure_scenarios(seed: int = DEFAULT_SEED) -> tuple[ScenarioSpec, ...]:
    """The paper's figure configurations as library entries (family ``paper``)."""
    entries = [
        spec_from_federation(
            "paper-fig6-2sc",
            figures.fig6_2sc_scenario(target_share=3, target_rate=7.0),
            description="Fig. 6a/6b point: fixed SC plus swept target SC",
            seed=seed,
            strategy_step=2,
        ),
        spec_from_federation(
            "paper-fig6-10sc",
            figures.fig6_10sc_scenario(target_share=3, target_rate=7.0),
            description="Fig. 6c/6d point: nine fixed SCs plus the target SC",
            seed=seed,
            strategy_step=2,
        ),
        spec_from_federation(
            "paper-fig6-100vm",
            figures.fig6_100vm_scenario(other_rate=70.0, target_rate=70.0),
            description="Fig. 6e/6f point: two 100-VM SCs sharing S=10",
            seed=seed,
            strategy_step=20,
        ),
        spec_from_federation(
            "paper-fig8-perf-k4",
            figures.fig8_perf_scenario(n_clouds=4),
            description="Fig. 8a point: four 10-VM SCs sharing 2 VMs apiece",
            seed=seed,
            strategy_step=2,
        ),
        spec_from_federation(
            "paper-fig8-game-k3",
            figures.fig8_game_scenario(n_clouds=3),
            description="Fig. 8b point: three SCs for game-convergence timing",
            seed=seed,
            strategy_step=4,
        ),
    ]
    for loads in sorted(figures.FIG7_LOADS):
        entries.append(
            spec_from_federation(
                f"paper-fig7-{loads}",
                figures.fig7_scenario(loads=loads),
                description=f"Fig. 7 {loads!r} load mix, C^P=10 per VM-unit-time",
                seed=seed,
                strategy_step=2,
            )
        )
    return tuple(
        ScenarioSpec(
            name=e.name,
            family="paper",
            description=e.description,
            clouds=e.clouds,
            demand=e.demand,
            run=e.run,
        )
        for e in entries
    )


def full_library(seed: int = DEFAULT_SEED) -> tuple[ScenarioSpec, ...]:
    """Paper figures + generated corpus, name-sorted (stable order)."""
    specs = figure_scenarios(seed) + generate_library(seed)
    names = [s.name for s in specs]
    if len(set(names)) != len(names):  # pragma: no cover - generator bug guard
        raise InvariantViolation(
            "scenario-library", "duplicate scenario names in library", {"names": names}
        )
    return tuple(sorted(specs, key=lambda s: s.name))


def library_index(seed: int = DEFAULT_SEED) -> dict[str, ScenarioSpec]:
    """Name -> spec mapping for the full library."""
    return {spec.name: spec for spec in full_library(seed)}


def resolve(name_or_path: str, seed: int = DEFAULT_SEED) -> ScenarioSpec:
    """A scenario by library name, or from a JSON file path."""
    path = Path(name_or_path)
    if path.suffix == ".json" or path.exists():
        return load_spec(path)
    index = library_index(seed)
    if name_or_path in index:
        return index[name_or_path]
    raise InvariantViolation(
        "scenario-library",
        f"{name_or_path!r} is neither a scenario file nor a library name",
        {"requested": name_or_path, "library_size": len(index)},
    )


def committed_manifest() -> dict[str, Any]:
    """Load the committed manifest (raises if missing/corrupt)."""
    if not MANIFEST_PATH.exists():
        raise InvariantViolation(
            "scenario-library",
            f"committed manifest missing at {MANIFEST_PATH}",
            {"path": str(MANIFEST_PATH)},
        )
    data = json.loads(MANIFEST_PATH.read_text())
    if not isinstance(data, dict) or "digest" not in data or "scenarios" not in data:
        raise InvariantViolation(
            "scenario-library",
            "committed manifest is malformed (needs digest + scenarios)",
            {"path": str(MANIFEST_PATH)},
        )
    return data


def check_manifest(
    specs: tuple[ScenarioSpec, ...], manifest: dict[str, Any]
) -> list[str]:
    """Compare a regenerated library against a manifest; return problems."""
    problems: list[str] = []
    digest = library_digest(specs)
    if digest != manifest.get("digest"):
        problems.append(
            f"library digest {digest} != manifest digest {manifest.get('digest')}"
        )
    if len(specs) != manifest.get("count"):
        problems.append(f"library has {len(specs)} scenarios, manifest says {manifest.get('count')}")
    by_name = {spec.name: spec for spec in specs}
    for entry in manifest.get("scenarios", []):
        spec = by_name.get(entry.get("name", ""))
        if spec is None:
            problems.append(f"manifest scenario {entry.get('name')!r} not in library")
        elif spec.content_hash() != entry.get("hash"):
            problems.append(f"scenario {spec.name!r} hash drifted from manifest")
    manifest_names = {entry.get("name") for entry in manifest.get("scenarios", [])}
    for name in by_name:
        if name not in manifest_names:
            problems.append(f"library scenario {name!r} missing from manifest")
    return problems


def write_manifest(path: str | Path = MANIFEST_PATH, seed: int = DEFAULT_SEED) -> dict[str, Any]:
    """Regenerate the library and write its manifest to ``path``."""
    manifest = library_manifest(full_library(seed), seed=seed)
    Path(path).write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    return manifest
