"""Deterministic scenario-library generator.

``generate_library(seed)`` emits 141 scenarios across eight families that
deliberately leave the paper's symmetric comfort zone:

=========  ==  ===========================================================
hetero     30  heterogeneous SC sizes (5–100 VMs) and SLAs, Poisson/exp
price      25  asymmetric price grids: per-SC public prices and ratios
diurnal    15  two-phase MMPP demand alternating low/high (day/night)
bursty     15  two-phase MMPP with rare, intense bursts (flash crowds)
heavytail  15  non-exponential service: Erlang, explicit H2, PH-fitted
mixed      20  combinations of all of the above
largek      9  federation scale: K in {20, 50, 100}, few active sharers
failure    12  injected outage/limplock/flash-crowd windows (robustness)
=========  ==  ===========================================================

Every draw flows from ``numpy.random.SeedSequence([seed, family, index])``
— no wall-clock, no unseeded randomness — so the same seed always yields
the same library, byte for byte, and the library digest in the committed
manifest is reproducible anywhere.  Derived quantities (MMPP phase rates,
H2 branches) are computed from the drawn values in closed form so the
schema's demand-consistency validation holds by construction.
"""

from __future__ import annotations

import hashlib
from typing import Any

import numpy as np

from repro.core.small_cloud import SmallCloud
from repro.runtime.seeding import derive_seed
from repro.scenarios.schema import SCHEMA_VERSION, RunConfig, ScenarioSpec
from repro.sim.failures import FailureWindow
from repro.workload.profiles import ArrivalSpec, DemandProfile, ServiceSpec

#: Master seed of the committed library (the paper's publication date).
DEFAULT_SEED = 20170605

#: Family name -> (stable id used in seed derivation, scenario count).
FAMILIES: dict[str, tuple[int, int]] = {
    "hetero": (1, 30),
    "price": (2, 25),
    "diurnal": (3, 15),
    "bursty": (4, 15),
    "heavytail": (5, 15),
    "mixed": (6, 20),
    "largek": (7, 9),
    "failure": (8, 12),
}

#: Failure classes the ``failure`` family cycles through (4 draws each;
#: the last scenario of each cycle block compounds two classes).
_FAILURE_KINDS = ("outage", "limplock", "flash_crowd")

#: Federation sizes the ``largek`` family cycles through (3 draws each).
_LARGEK_SIZES = (20, 50, 100)

_VM_SIZES = (5, 10, 20, 40, 100)
_SLA_BOUNDS = (0.1, 0.2, 0.5)
_BACKENDS = ("serial", "thread", "process")


def _rng(seed: int, family_id: int, index: int) -> np.random.Generator:
    return np.random.default_rng(np.random.SeedSequence([seed, family_id, index]))


def _round(value: float, digits: int = 3) -> float:
    return round(float(value), digits)


def _draw_cloud(
    rng: np.random.Generator,
    name: str,
    vms: int,
    # The fig7 price level: keeps equilibrium utilities above 1 so the
    # log-welfare at alpha=1 stays finite (see bench.scenarios.fig7_scenario).
    public_price: float = 10.0,
    federation_price: float = 5.0,
    sla_bound: float | None = None,
) -> SmallCloud:
    """One SC at a drawn utilization in [0.5, 0.92)."""
    utilization = _round(rng.uniform(0.5, 0.92))
    arrival = _round(max(utilization * vms, 0.05))
    bound = sla_bound if sla_bound is not None else float(rng.choice(_SLA_BOUNDS))
    shared = int(rng.integers(0, vms // 4 + 1))
    return SmallCloud(
        name=name,
        vms=vms,
        arrival_rate=arrival,
        sla_bound=bound,
        public_price=public_price,
        federation_price=federation_price,
        shared_vms=shared,
    )


def _run_config(
    rng: np.random.Generator,
    seed: int,
    name: str,
    max_vms: int,
    alphas: tuple[float, ...] = (0.0, 1.0),
    model: str = "pooled",
) -> RunConfig:
    """Deterministic run config; strategy grids stay <= 6 points per SC.

    Families with drawn (possibly low) price levels pin ``alphas`` to
    utilitarian scoring, where small utilities cannot push the welfare
    to ``-inf``.  ``model`` keeps the same draw order for every family:
    it is applied after the rng consumption, so overriding it never
    shifts another family's digests.
    """
    return RunConfig(
        seed=derive_seed(seed, name),
        backend=str(rng.choice(_BACKENDS)),
        workers=1 if rng.random() < 0.4 else 2,
        model=model,
        gamma=float(rng.choice((0.0, 1.0))),
        alpha=float(rng.choice(alphas)),
        strategy_step=max(1, max_vms // 5),
        horizon=2_000.0,
    )


def _diurnal_arrival(rng: np.random.Generator, mean_rate: float) -> ArrivalSpec:
    """Two-phase day/night MMPP with symmetric switching (mean preserved)."""
    delta = _round(rng.uniform(0.2, 0.6))
    low = mean_rate * (1.0 - delta)
    high = 2.0 * mean_rate - low
    switch = _round(rng.uniform(0.005, 0.05), 4)
    return ArrivalSpec(
        kind="mmpp",
        rates=(low, high),
        transitions=((-switch, switch), (switch, -switch)),
    )


def _bursty_arrival(rng: np.random.Generator, mean_rate: float) -> ArrivalSpec:
    """Two-phase base/burst MMPP: rare bursts at a multiple of the base rate."""
    multiplier = _round(rng.uniform(3.0, 8.0))
    burst_fraction = _round(rng.uniform(0.02, 0.1))
    base = mean_rate / (1.0 + burst_fraction * (multiplier - 1.0))
    burst = base * multiplier
    exit_burst = _round(rng.uniform(0.5, 2.0))  # 1 / mean burst duration
    enter_burst = exit_burst * burst_fraction / (1.0 - burst_fraction)
    return ArrivalSpec(
        kind="mmpp",
        rates=(base, burst),
        transitions=((-enter_burst, enter_burst), (exit_burst, -exit_burst)),
    )


def _heavytail_service(rng: np.random.Generator, service_rate: float) -> ServiceSpec:
    """Non-exponential service: Erlang, PH-fit by SCV, or explicit H2."""
    pick = rng.random()
    if pick < 0.3:
        return ServiceSpec(kind="erlang", stages=int(rng.integers(2, 6)))
    scv = _round(rng.uniform(2.0, 12.0))
    if pick < 0.65:
        return ServiceSpec(kind="phase-fit", scv=scv)
    # Balanced-means H2 (same construction as the PH fitter), explicit.
    ratio = float(np.sqrt((scv - 1.0) / (scv + 1.0)))
    p1 = 0.5 * (1.0 + ratio)
    p2 = 1.0 - p1
    return ServiceSpec(
        kind="hyperexponential",
        probabilities=(p1, p2),
        rates=(2.0 * p1 * service_rate, 2.0 * p2 * service_rate),
    )


def _asymmetric_prices(rng: np.random.Generator) -> tuple[float, float]:
    public = _round(rng.uniform(2.0, 12.0), 2)
    ratio = _round(rng.uniform(0.2, 0.9))
    return public, _round(public * ratio)


def _gen_hetero(rng: np.random.Generator, seed: int, index: int) -> ScenarioSpec:
    name = f"hetero-{index:03d}"
    k = int(rng.integers(2, 7))
    sizes = [int(rng.choice(_VM_SIZES)) for _ in range(k)]
    clouds = tuple(_draw_cloud(rng, f"sc{i + 1}", sizes[i]) for i in range(k))
    return ScenarioSpec(
        name=name,
        family="hetero",
        description=f"{k} SCs with heterogeneous sizes {sizes} and SLAs",
        clouds=clouds,
        run=_run_config(rng, seed, name, max(sizes)),
    )


def _gen_price(rng: np.random.Generator, seed: int, index: int) -> ScenarioSpec:
    name = f"price-{index:03d}"
    k = int(rng.integers(2, 6))
    vms = int(rng.choice((10, 20)))
    clouds = []
    for i in range(k):
        public, federation = _asymmetric_prices(rng)
        clouds.append(
            _draw_cloud(
                rng, f"sc{i + 1}", vms, public_price=public, federation_price=federation
            )
        )
    return ScenarioSpec(
        name=name,
        family="price",
        description=f"{k} SCs with asymmetric public/federation price grids",
        clouds=tuple(clouds),
        run=_run_config(rng, seed, name, vms, alphas=(0.0,)),
    )


def _gen_diurnal(rng: np.random.Generator, seed: int, index: int) -> ScenarioSpec:
    name = f"diurnal-{index:03d}"
    k = int(rng.integers(2, 5))
    vms = int(rng.choice((10, 20)))
    clouds = tuple(_draw_cloud(rng, f"sc{i + 1}", vms) for i in range(k))
    demand = tuple(
        DemandProfile(arrival=_diurnal_arrival(rng, c.arrival_rate)) for c in clouds
    )
    return ScenarioSpec(
        name=name,
        family="diurnal",
        description=f"{k} SCs under two-phase diurnal MMPP demand",
        clouds=clouds,
        demand=demand,
        run=_run_config(rng, seed, name, vms),
    )


def _gen_bursty(rng: np.random.Generator, seed: int, index: int) -> ScenarioSpec:
    name = f"bursty-{index:03d}"
    k = int(rng.integers(2, 5))
    vms = int(rng.choice((10, 20)))
    clouds = tuple(_draw_cloud(rng, f"sc{i + 1}", vms) for i in range(k))
    demand = tuple(
        DemandProfile(arrival=_bursty_arrival(rng, c.arrival_rate)) for c in clouds
    )
    return ScenarioSpec(
        name=name,
        family="bursty",
        description=f"{k} SCs under bursty MMPP demand (rare flash crowds)",
        clouds=clouds,
        demand=demand,
        run=_run_config(rng, seed, name, vms),
    )


def _gen_heavytail(rng: np.random.Generator, seed: int, index: int) -> ScenarioSpec:
    name = f"heavytail-{index:03d}"
    k = int(rng.integers(2, 5))
    vms = int(rng.choice((10, 20)))
    clouds = tuple(_draw_cloud(rng, f"sc{i + 1}", vms) for i in range(k))
    demand = tuple(
        DemandProfile(service=_heavytail_service(rng, c.service_rate)) for c in clouds
    )
    return ScenarioSpec(
        name=name,
        family="heavytail",
        description=f"{k} SCs with non-exponential (Erlang/H2/PH) service",
        clouds=clouds,
        demand=demand,
        run=_run_config(rng, seed, name, vms),
    )


def _gen_mixed(rng: np.random.Generator, seed: int, index: int) -> ScenarioSpec:
    name = f"mixed-{index:03d}"
    k = int(rng.integers(2, 6))
    clouds = []
    demand = []
    for i in range(k):
        vms = int(rng.choice(_VM_SIZES[:4]))
        public, federation = _asymmetric_prices(rng)
        cloud = _draw_cloud(
            rng, f"sc{i + 1}", vms, public_price=public, federation_price=federation
        )
        clouds.append(cloud)
        arrival_pick = rng.random()
        if arrival_pick < 0.4:
            arrival = ArrivalSpec()
        elif arrival_pick < 0.7:
            arrival = _diurnal_arrival(rng, cloud.arrival_rate)
        else:
            arrival = _bursty_arrival(rng, cloud.arrival_rate)
        if rng.random() < 0.5:
            service = ServiceSpec()
        else:
            service = _heavytail_service(rng, cloud.service_rate)
        demand.append(DemandProfile(arrival=arrival, service=service))
    return ScenarioSpec(
        name=name,
        family="mixed",
        description=f"{k} SCs mixing size, price, demand and service heterogeneity",
        clouds=tuple(clouds),
        demand=tuple(demand),
        run=_run_config(rng, seed, name, max(c.vms for c in clouds), alphas=(0.0,)),
    )


def _gen_largek(rng: np.random.Generator, seed: int, index: int) -> ScenarioSpec:
    """Federation scale without state-space scale.

    K grows to 100 SCs, but only a handful of leading SCs share (unit
    shares), so every hierarchical level's pool — which is what the
    per-level state space grows with — stays bounded while the chain
    length tracks K.  This is the regime the sharded and incremental
    evaluation paths target, so run configs pin the approximate model —
    the tier those paths accelerate.  The pooled model is NOT a cheap
    stand-in here: its borrower fixed point couples all K clouds to one
    small pool and stops contracting when K far exceeds the pool (the
    damped map plus df-sane fallback leaves residuals of ~1e-2 at
    K=100).  Full market games at this scale are deliberately outside
    the CI smoke sweep (``smoke_subset`` defers K>10 federations to the
    ``kscale-smoke`` job) and are long-haul interactively too — a K=20
    game is tens of minutes on one core.  The fast surfaces for this
    family are ``run --mode simulate`` (the event simulator is cheap at
    any K), single ``evaluate`` calls through ``repro.bench.kscale``,
    and the ``ksweep10``/``ksweep20`` differential matrices.
    """
    name = f"largek-{index:03d}"
    k = _LARGEK_SIZES[index % len(_LARGEK_SIZES)]
    vms = int(rng.choice((3, 4)))
    sharers = int(rng.integers(3, 7))
    clouds = tuple(
        SmallCloud(
            name=f"sc{i + 1:03d}",
            vms=vms,
            arrival_rate=_round(vms * rng.uniform(0.45, 0.7)),
            sla_bound=3.0,
            public_price=10.0,
            federation_price=5.0,
            shared_vms=1 if i < sharers else 0,
        )
        for i in range(k)
    )
    return ScenarioSpec(
        name=name,
        family="largek",
        description=(
            f"{k} SCs, {sharers} active unit sharers - "
            "chain-length scaling with bounded pools"
        ),
        clouds=clouds,
        run=_run_config(rng, seed, name, vms, model="approximate"),
    )


def _draw_window(
    rng: np.random.Generator, kind: str, sc: int, horizon: float
) -> FailureWindow:
    """One failure window well inside the measured span of ``horizon``."""
    start = _round(rng.uniform(0.15, 0.5) * horizon)
    duration = _round(rng.uniform(0.1, 0.25) * horizon)
    factor = 1.0
    if kind == "limplock":
        factor = _round(rng.uniform(2.0, 6.0))
    elif kind == "flash_crowd":
        factor = _round(rng.uniform(1.5, 4.0))
    return FailureWindow(
        kind=kind, sc=sc, start=start, end=_round(start + duration), factor=factor
    )


def _gen_failure(rng: np.random.Generator, seed: int, index: int) -> ScenarioSpec:
    """Robustness probes: healthy federations with injected failures.

    Cycles outage -> limplock -> flash_crowd; every fourth scenario
    compounds two different classes on two different SCs (a partner dies
    *while* another is limping, the hard case for the borrowing market).
    """
    name = f"failure-{index:03d}"
    k = int(rng.integers(3, 6))
    vms = int(rng.choice((10, 20)))
    clouds = tuple(
        _draw_cloud(rng, f"sc{i + 1}", vms, sla_bound=0.5) for i in range(k)
    )
    horizon = 2_000.0
    kind = _FAILURE_KINDS[index % 3]
    target = int(rng.integers(0, k))
    windows = [_draw_window(rng, kind, target, horizon)]
    compound = index % 4 == 3
    if compound:
        other_kind = _FAILURE_KINDS[(index + 1) % 3]
        other_sc = int(rng.integers(0, k - 1))
        if other_sc >= target:
            other_sc += 1
        windows.append(_draw_window(rng, other_kind, other_sc, horizon))
    kinds = "+".join(sorted({w.kind for w in windows}))
    return ScenarioSpec(
        name=name,
        family="failure",
        description=f"{k} SCs under injected {kinds} windows (robustness probe)",
        clouds=clouds,
        failures=tuple(windows),
        run=_run_config(rng, seed, name, vms, alphas=(0.0,)),
    )


_GENERATORS = {
    "hetero": _gen_hetero,
    "price": _gen_price,
    "diurnal": _gen_diurnal,
    "bursty": _gen_bursty,
    "heavytail": _gen_heavytail,
    "mixed": _gen_mixed,
    "largek": _gen_largek,
    "failure": _gen_failure,
}


def generate_library(seed: int = DEFAULT_SEED) -> tuple[ScenarioSpec, ...]:
    """Generate the full scenario library for ``seed`` (always validated)."""
    specs: list[ScenarioSpec] = []
    for family, (family_id, count) in FAMILIES.items():
        build = _GENERATORS[family]
        for index in range(count):
            specs.append(build(_rng(seed, family_id, index), seed, index))
    return tuple(specs)


def library_digest(specs: tuple[ScenarioSpec, ...] | list[ScenarioSpec]) -> str:
    """Stable digest of a library: sha256 over sorted ``name:hash`` lines."""
    lines = sorted(f"{spec.name}:{spec.content_hash()}" for spec in specs)
    return hashlib.sha256("\n".join(lines).encode("utf-8")).hexdigest()


def library_manifest(
    specs: tuple[ScenarioSpec, ...] | list[ScenarioSpec], seed: int = DEFAULT_SEED
) -> dict[str, Any]:
    """The manifest committed alongside the generator (and checked in CI)."""
    return {
        "schema_version": SCHEMA_VERSION,
        "seed": seed,
        "count": len(specs),
        "digest": library_digest(specs),
        "scenarios": [
            {
                "name": spec.name,
                "family": spec.family,
                "k": len(spec.clouds),
                "hash": spec.content_hash(),
            }
            for spec in sorted(specs, key=lambda s: s.name)
        ],
    }
