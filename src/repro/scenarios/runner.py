"""Drive one scenario end to end: market solve or simulation.

This module is the execution half of the scenario subsystem — the schema
says *what*, the runner says *how*: build the executor/model the spec's
:class:`~repro.scenarios.schema.RunConfig` asks for, wire the demand
profiles into the simulator, namespace the persistent cache by the
scenario's content hash, and hand back JSON-able results plus a
``float.hex`` digest for bitwise cross-backend comparison (the same
discipline :mod:`repro.analysis.differential` uses).
"""

from __future__ import annotations

import hashlib
import json
from typing import TYPE_CHECKING, Any

from repro.scenarios.schema import ScenarioSpec

if TYPE_CHECKING:
    from repro.core.framework import SCShareOutcome
    from repro.perf.base import PerformanceModel
    from repro.runtime.cache import DiskParamsCache
    from repro.runtime.executor import Executor


def make_executor(spec: ScenarioSpec, workers: int | None = None, backend: str | None = None) -> "Executor":
    """The executor the spec's run config (or the overrides) asks for."""
    from repro.runtime.executor import make_executor as build

    kind = backend if backend is not None else spec.run.backend
    width = workers if workers is not None else spec.run.workers
    return build(1 if kind == "serial" else width, kind=kind)


def make_model(spec: ScenarioSpec, executor: "Executor | None" = None) -> "PerformanceModel":
    """The performance model the spec's run config asks for."""
    if spec.run.model == "approximate":
        from repro.perf.approximate import ApproximateModel

        return ApproximateModel(executor=executor)
    if spec.run.model == "auto":
        from repro.perf.auto import AutoModel

        return AutoModel(executor=executor)
    from repro.perf.pooled import PooledModel

    return PooledModel()


def make_params_cache(
    spec: ScenarioSpec, model: "PerformanceModel", cache_dir: str | None
) -> "DiskParamsCache | None":
    """Persistent cache namespaced by the scenario's content hash."""
    if cache_dir is None:
        return None
    from repro.runtime.cache import DiskParamsCache

    return DiskParamsCache(
        cache_dir,
        spec.federation(),
        model,
        namespace=f"scenario:{spec.content_hash()[:16]}",
    )


def solve_spec(
    spec: ScenarioSpec,
    workers: int | None = None,
    backend: str | None = None,
    cache_dir: str | None = None,
) -> "SCShareOutcome":
    """Run the SC-Share market loop under the spec's run config."""
    from repro.core.framework import SCShare

    executor = make_executor(spec, workers=workers, backend=backend)
    model = make_model(spec, executor=executor)
    runner = SCShare(
        spec.federation(),
        model=model,
        gamma=spec.run.gamma,
        strategy_step=spec.run.strategy_step,
        params_cache=make_params_cache(spec, model, cache_dir),
        executor=executor,
    )
    return runner.run(alpha=spec.run.alpha, optimum_method="ascent")


def simulate_spec(
    spec: ScenarioSpec, horizon: float | None = None, step_mode: str = "event"
) -> list[dict[str, Any]]:
    """Run the discrete-event simulator with the spec's demand profiles.

    The spec's failure schedule (if any) is injected; ``step_mode``
    selects the engine path (all modes are bit-identical, so the choice
    only affects wall-clock).
    """
    import numpy as np

    from repro.runtime.seeding import derive_seed
    from repro.sim.federation import FederationSimulator

    scenario = spec.federation()
    service = None
    if any(profile.service.kind != "exponential" for profile in spec.demand):
        service = [
            profile.service.build(cloud.service_rate)
            for cloud, profile in zip(scenario, spec.demand)
        ]
    arrivals = None
    if any(profile.arrival.kind != "poisson" for profile in spec.demand):
        arrivals = [
            profile.arrival.build(
                cloud.arrival_rate,
                np.random.default_rng(
                    np.random.SeedSequence(derive_seed(spec.run.seed, f"demand[{i}]"))
                ),
            )
            for i, (cloud, profile) in enumerate(zip(scenario, spec.demand))
        ]
    simulator = FederationSimulator(
        scenario,
        seed=spec.run.seed,
        service_distributions=service,
        arrival_processes=arrivals,
        step_mode=step_mode,
        failures=spec.failures or None,
    )
    span = horizon if horizon is not None else spec.run.horizon
    metrics = simulator.run(horizon=span, warmup=span * 0.05)
    return [
        {
            "name": cloud.name,
            "lent_mean": m.lent_mean,
            "borrowed_mean": m.borrowed_mean,
            "forward_rate": m.forward_rate,
            "forward_probability": m.forward_probability,
            "utilization": m.utilization,
            "mean_wait": m.mean_wait,
        }
        for cloud, m in zip(scenario, metrics)
    ]


def outcome_observables(outcome: "SCShareOutcome") -> dict[str, Any]:
    """Bitwise observables of a market outcome (floats as ``float.hex``)."""
    return {
        "equilibrium": list(outcome.equilibrium),
        "converged": outcome.game.converged,
        "iterations": outcome.game.iterations,
        "welfare": float(outcome.welfare).hex(),
        "optimum_welfare": float(outcome.optimum_welfare).hex(),
        "efficiency": float(outcome.efficiency).hex(),
        "utilities": [float(d.utility).hex() for d in outcome.details],
        "costs": [float(d.cost).hex() for d in outcome.details],
    }


def observables_digest(observables: dict[str, Any]) -> str:
    """sha256 of the canonical observables rendering.

    This digest is what the cross-backend sweep asserts bit-identical,
    so its inputs must stay pure functions of the outcome: the RPR3xx
    dataflow lint traces this function for environment or scheduling
    taint (RPR303/RPR305) and omitted inputs (RPR301).
    """
    return hashlib.sha256(
        json.dumps(observables, sort_keys=True).encode("utf-8")
    ).hexdigest()


def run_spec(
    spec: ScenarioSpec,
    mode: str = "solve",
    workers: int | None = None,
    backend: str | None = None,
    cache_dir: str | None = None,
    step_mode: str = "event",
) -> dict[str, Any]:
    """Run a scenario and return a JSON-able report.

    Args:
        spec: the scenario.
        mode: ``"solve"`` (market loop) or ``"simulate"`` (event-driven
            simulator with the spec's demand profiles).
        workers / backend / cache_dir: optional overrides of the spec's
            run config.
        step_mode: engine stepping mode for ``simulate`` runs.
    """
    from repro.core.serialization import outcome_to_dict

    report: dict[str, Any] = {
        "scenario": spec.name,
        "hash": spec.content_hash(),
        "mode": mode,
    }
    if mode == "solve":
        outcome = solve_spec(spec, workers=workers, backend=backend, cache_dir=cache_dir)
        observables = outcome_observables(outcome)
        report["outcome"] = outcome_to_dict(outcome)
        report["digest"] = observables_digest(observables)
    elif mode == "simulate":
        report["metrics"] = simulate_spec(spec, step_mode=step_mode)
    else:
        raise ValueError(f"unknown run mode {mode!r}")
    return report
