"""Declarative scenario subsystem: schema, generated library, sweeps.

- :mod:`repro.scenarios.schema` — versioned frozen-dataclass schema with
  byte-stable JSON round-tripping and strict
  :class:`~repro.analysis.sanitize.InvariantViolation` validation.
- :mod:`repro.scenarios.generator` — deterministic (SeedSequence-driven)
  generator of the 120-scenario corpus, content-hashed per scenario with
  a stable library digest.
- :mod:`repro.scenarios.library` — the registry: paper-figure scenarios
  plus the generated corpus, name resolution, committed-manifest checks.
- :mod:`repro.scenarios.runner` — drive one scenario (solve/simulate)
  under its declared run config, cache namespaced by content hash.
- :mod:`repro.scenarios.sweep` — fan scenario subsets across executor
  backends with bitwise-identical results asserted.
- :mod:`repro.scenarios.cli` — ``python -m repro.scenarios``
  list/validate/show/run/generate/sweep.
"""

from repro.scenarios.generator import (
    DEFAULT_SEED,
    generate_library,
    library_digest,
    library_manifest,
)
from repro.scenarios.library import (
    MANIFEST_PATH,
    check_manifest,
    committed_manifest,
    figure_scenarios,
    full_library,
    library_index,
    resolve,
    spec_from_federation,
)
from repro.scenarios.schema import (
    SCHEMA_VERSION,
    RunConfig,
    ScenarioSpec,
    load_spec,
    save_spec,
    spec_from_dict,
)

__all__ = [
    "DEFAULT_SEED",
    "MANIFEST_PATH",
    "RunConfig",
    "SCHEMA_VERSION",
    "ScenarioSpec",
    "check_manifest",
    "committed_manifest",
    "figure_scenarios",
    "full_library",
    "generate_library",
    "library_digest",
    "library_index",
    "library_manifest",
    "load_spec",
    "resolve",
    "save_spec",
    "spec_from_dict",
    "spec_from_federation",
]
