"""Versioned, validated scenario schema (frozen dataclasses + JSON).

A :class:`ScenarioSpec` is the declarative unit every later experiment
points at: the federation's SC entities (sizes, SLAs, prices), one
:class:`~repro.workload.profiles.DemandProfile` per SC (Poisson or MMPP
arrivals, exponential/Erlang/hyperexponential/PH-fitted service), and a
:class:`RunConfig` (seed, executor backend, model, game knobs).  Specs
round-trip through canonical JSON byte-stably, carry an explicit
``schema_version``, and are content-hashed so a scenario library has a
stable digest.

Strict validation routes through the existing
:class:`~repro.analysis.sanitize.InvariantViolation` machinery: every
rejection raises a violation whose ``invariant`` names the broken
contract (``scenario-schema``, ``scenario-schema-version``,
``scenario-demand-consistency``) and whose ``context`` carries the
offending values — the same post-mortem shape the runtime sanitizer
produces.
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.analysis.sanitize import InvariantViolation
from repro.core.serialization import cloud_from_dict, cloud_to_dict
from repro.core.small_cloud import FederationScenario, SmallCloud
from repro.exceptions import ConfigurationError
from repro.sim.failures import FailureWindow, validate_schedule, window_from_dict
from repro.workload.profiles import DemandProfile

#: Bump on any layout change; loaders reject other versions loudly.
SCHEMA_VERSION = 1

#: Executor backends a scenario may request (see repro.runtime.executor).
BACKENDS = ("serial", "thread", "process")

#: Performance models a scenario may request (``auto`` is the
#: budget-driven hybrid tier, :class:`repro.perf.auto.AutoModel`).
MODELS = ("pooled", "approximate", "auto")

#: Relative tolerance for demand-profile vs. SC rate consistency.
_RATE_TOLERANCE = 1e-6

_NAME_PATTERN = re.compile(r"^[a-z0-9][a-z0-9_.-]*$")

_RUN_FIELDS = (
    "seed",
    "backend",
    "workers",
    "model",
    "gamma",
    "alpha",
    "strategy_step",
    "horizon",
)

_SPEC_FIELDS = (
    "schema_version",
    "name",
    "family",
    "description",
    "clouds",
    "demand",
    "run",
    "failures",
)


def _reject(invariant: str, message: str, context: dict[str, Any]) -> InvariantViolation:
    return InvariantViolation(invariant, message, context)


@dataclass(frozen=True)
class RunConfig:
    """How a scenario is executed: determinism, parallelism, game knobs.

    Attributes:
        seed: master seed for the simulator / any stochastic component.
        backend: executor backend (``serial`` / ``thread`` / ``process``).
        workers: parallel width behind the backend.
        model: performance model (``pooled`` / ``approximate`` /
            ``auto``).
        gamma: Eq. (2) utility exponent shared by all SCs.
        alpha: fairness level used for welfare scoring.
        strategy_step: sharing-grid step for the strategy spaces.
        horizon: simulation horizon (time units) for ``simulate`` runs.
    """

    seed: int = 0
    backend: str = "serial"
    workers: int = 1
    model: str = "pooled"
    gamma: float = 0.0
    alpha: float = 0.0
    strategy_step: int = 1
    horizon: float = 2_000.0

    def __post_init__(self) -> None:
        if not isinstance(self.seed, int) or isinstance(self.seed, bool) or self.seed < 0:
            raise _reject(
                "scenario-schema", "seed must be a non-negative integer", {"seed": self.seed}
            )
        if self.backend not in BACKENDS:
            raise _reject(
                "scenario-schema",
                f"backend must be one of {BACKENDS}",
                {"backend": self.backend},
            )
        if not isinstance(self.workers, int) or self.workers < 1:
            raise _reject(
                "scenario-schema", "workers must be a positive integer", {"workers": self.workers}
            )
        if self.model not in MODELS:
            raise _reject(
                "scenario-schema", f"model must be one of {MODELS}", {"model": self.model}
            )
        if not 0.0 <= float(self.gamma) <= 1.0:
            raise _reject(
                "scenario-schema", "gamma must be in [0, 1]", {"gamma": self.gamma}
            )
        if float(self.alpha) < 0.0:
            raise _reject(
                "scenario-schema", "alpha must be >= 0", {"alpha": self.alpha}
            )
        if not isinstance(self.strategy_step, int) or self.strategy_step < 1:
            raise _reject(
                "scenario-schema",
                "strategy_step must be a positive integer",
                {"strategy_step": self.strategy_step},
            )
        if not float(self.horizon) > 0.0:
            raise _reject(
                "scenario-schema", "horizon must be > 0", {"horizon": self.horizon}
            )

    def to_dict(self) -> dict[str, Any]:
        """Serialize to a plain dictionary."""
        return {name: getattr(self, name) for name in _RUN_FIELDS}

    @staticmethod
    def from_dict(data: dict[str, Any]) -> "RunConfig":
        """Deserialize; unknown keys are rejected loudly."""
        unknown = set(data) - set(_RUN_FIELDS)
        if unknown:
            raise _reject(
                "scenario-schema",
                f"unknown run-config fields: {sorted(unknown)}",
                {"unknown": sorted(unknown)},
            )
        return RunConfig(**data)


@dataclass(frozen=True)
class ScenarioSpec:
    """One named, versioned, validated scenario.

    Attributes:
        name: stable identifier (lowercase, ``[a-z0-9_.-]``) — the key
            callers use to pick a scenario out of the library.
        family: coarse grouping tag (``paper``, ``hetero``, ``price``,
            ``diurnal``, ``bursty``, ``heavytail``, ``mixed`` ...).
        description: one human-readable sentence.
        clouds: the federation's SC entities, in order.
        demand: one demand profile per SC, aligned with ``clouds``.
        run: execution configuration.
        failures: optional failure-injection schedule (see
            :mod:`repro.sim.failures`).  Serialized only when non-empty,
            so failure-free scenarios keep their pre-existing content
            hashes.
        schema_version: layout version; must equal :data:`SCHEMA_VERSION`.
    """

    name: str
    clouds: tuple[SmallCloud, ...]
    family: str = "custom"
    description: str = ""
    demand: tuple[DemandProfile, ...] = ()
    run: RunConfig = field(default_factory=RunConfig)
    failures: tuple[FailureWindow, ...] = ()
    schema_version: int = SCHEMA_VERSION

    def __post_init__(self) -> None:
        if self.schema_version != SCHEMA_VERSION:
            raise _reject(
                "scenario-schema-version",
                f"unknown schema version {self.schema_version} "
                f"(this build reads version {SCHEMA_VERSION})",
                {"schema_version": self.schema_version, "supported": SCHEMA_VERSION},
            )
        if not isinstance(self.name, str) or not _NAME_PATTERN.match(self.name):
            raise _reject(
                "scenario-schema",
                "name must be lowercase [a-z0-9_.-] and non-empty",
                {"name": self.name},
            )
        if not isinstance(self.family, str) or not _NAME_PATTERN.match(self.family):
            raise _reject(
                "scenario-schema",
                "family must be lowercase [a-z0-9_.-] and non-empty",
                {"family": self.family},
            )
        clouds = tuple(self.clouds)
        object.__setattr__(self, "clouds", clouds)
        if not clouds:
            raise _reject("scenario-schema", "a scenario needs at least one SC", {})
        demand = tuple(self.demand)
        if not demand:
            demand = tuple(DemandProfile() for _ in clouds)
        object.__setattr__(self, "demand", demand)
        if len(demand) != len(clouds):
            raise _reject(
                "scenario-schema",
                f"demand has {len(demand)} profiles for {len(clouds)} SCs",
                {"demand": len(demand), "clouds": len(clouds)},
            )
        # Duplicate-name rejection comes with FederationScenario itself.
        try:
            FederationScenario(clouds)
        except ConfigurationError as error:
            raise _reject("scenario-schema", str(error), {"name": self.name}) from error
        failures = tuple(self.failures)
        object.__setattr__(self, "failures", failures)
        if failures:
            try:
                validate_schedule(failures, len(clouds))
                for window in failures:
                    if window.end > float(self.run.horizon):
                        raise ConfigurationError(
                            f"failure window ends at {window.end}, past the "
                            f"run horizon {self.run.horizon}"
                        )
            except ConfigurationError as error:
                raise _reject(
                    "scenario-failure-schedule", str(error), {"name": self.name}
                ) from error
        self._check_demand_consistency()

    def _check_demand_consistency(self) -> None:
        """Demand profiles must agree with the SCs' analytic rates.

        The analytic models read ``arrival_rate``/``service_rate`` off the
        SC; the simulator draws from the demand profile.  Both views must
        describe the same long-run load, or the scenario would silently
        mean two different things depending on the driver.
        """
        for i, (cloud, profile) in enumerate(zip(self.clouds, self.demand)):
            mean_rate = profile.arrival.mean_rate(cloud.arrival_rate)
            if abs(mean_rate - cloud.arrival_rate) > _RATE_TOLERANCE * cloud.arrival_rate:
                raise _reject(
                    "scenario-demand-consistency",
                    f"SC {cloud.name!r}: demand mean arrival rate {mean_rate} "
                    f"!= arrival_rate {cloud.arrival_rate}",
                    {"index": i, "mean_rate": mean_rate, "arrival_rate": cloud.arrival_rate},
                )
            mean_service = profile.service.mean(cloud.service_rate)
            expected = 1.0 / cloud.service_rate
            if abs(mean_service - expected) > _RATE_TOLERANCE * expected:
                raise _reject(
                    "scenario-demand-consistency",
                    f"SC {cloud.name!r}: demand mean service time {mean_service} "
                    f"!= 1/service_rate {expected}",
                    {"index": i, "mean_service": mean_service, "expected": expected},
                )

    def federation(self) -> FederationScenario:
        """The plain :class:`FederationScenario` the models consume."""
        return FederationScenario(self.clouds)

    def to_dict(self) -> dict[str, Any]:
        """Serialize to a plain dictionary.

        The ``failures`` key appears only when the schedule is non-empty:
        failure-free scenarios serialize exactly as they did before the
        field existed, keeping the library's content hashes stable.
        """
        data = {
            "schema_version": self.schema_version,
            "name": self.name,
            "family": self.family,
            "description": self.description,
            "clouds": [cloud_to_dict(c) for c in self.clouds],
            "demand": [p.to_dict() for p in self.demand],
            "run": self.run.to_dict(),
        }
        if self.failures:
            data["failures"] = [w.to_dict() for w in self.failures]
        return data

    def canonical_json(self) -> str:
        """Canonical byte-stable JSON rendering (sorted keys, no spaces)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def content_hash(self) -> str:
        """sha256 of the canonical JSON — the scenario's content identity."""
        return hashlib.sha256(self.canonical_json().encode("utf-8")).hexdigest()


def spec_from_dict(data: dict[str, Any]) -> ScenarioSpec:
    """Deserialize a :class:`ScenarioSpec`; every problem raises a violation."""
    if not isinstance(data, dict):
        raise _reject(
            "scenario-schema", f"scenario must be an object, got {type(data).__name__}", {}
        )
    unknown = set(data) - set(_SPEC_FIELDS)
    if unknown:
        raise _reject(
            "scenario-schema",
            f"unknown scenario fields: {sorted(unknown)}",
            {"unknown": sorted(unknown)},
        )
    for required in ("name", "clouds"):
        if required not in data:
            raise _reject(
                "scenario-schema", f"scenario needs a {required!r} field", {"missing": required}
            )
    version = data.get("schema_version", SCHEMA_VERSION)
    if version != SCHEMA_VERSION:
        raise _reject(
            "scenario-schema-version",
            f"unknown schema version {version} (this build reads version {SCHEMA_VERSION})",
            {"schema_version": version, "supported": SCHEMA_VERSION},
        )
    try:
        clouds = tuple(cloud_from_dict(c) for c in data["clouds"])
        demand = tuple(DemandProfile.from_dict(p) for p in data.get("demand", ()))
        failures = tuple(window_from_dict(w) for w in data.get("failures", ()))
    except ConfigurationError as error:
        # SmallCloud / profile / failure-window constructors reject bad
        # SLAs, negative rates, unknown fields ... with
        # ConfigurationError; re-route through the invariant machinery so
        # schema rejection has one uniform shape.
        raise _reject("scenario-schema", str(error), {"name": data.get("name")}) from error
    return ScenarioSpec(
        schema_version=version,
        name=data["name"],
        family=data.get("family", "custom"),
        description=data.get("description", ""),
        clouds=clouds,
        demand=demand,
        run=RunConfig.from_dict(data.get("run", {})),
        failures=failures,
    )


def save_spec(spec: ScenarioSpec, path: str | Path) -> None:
    """Write a spec to a JSON file (canonical form plus trailing newline)."""
    Path(path).write_text(spec.canonical_json() + "\n")


def load_spec(path: str | Path) -> ScenarioSpec:
    """Read and validate a spec from a JSON file."""
    try:
        data = json.loads(Path(path).read_text())
    except OSError as error:
        raise _reject(
            "scenario-schema", f"{path}: unreadable ({error})", {"path": str(path)}
        ) from error
    except json.JSONDecodeError as error:
        raise _reject(
            "scenario-schema", f"{path}: not valid JSON ({error})", {"path": str(path)}
        ) from error
    return spec_from_dict(data)
