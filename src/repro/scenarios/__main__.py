"""Module entry point: ``python -m repro.scenarios``."""

from __future__ import annotations

import sys

from repro.scenarios.cli import main

if __name__ == "__main__":
    sys.exit(main())
