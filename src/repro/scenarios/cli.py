"""Command-line interface: ``python -m repro.scenarios <command>``.

Commands:

- ``list`` — enumerate the library (paper figures + generated corpus).
- ``validate NAME|FILE ...`` / ``validate --all`` — strict schema
  validation; ``--all`` also regenerates the library and checks its
  digest against the committed manifest.
- ``show NAME|FILE`` — print a scenario's JSON.
- ``run NAME|FILE`` — drive one scenario (market solve or simulation),
  with the shared ``--trace`` / ``--metrics`` / ``--profile`` surface.
- ``generate`` — write the library (and manifest) to a directory;
  ``--update-manifest`` refreshes the committed manifest.
- ``sweep`` — fan a scenario subset across executor backends and assert
  bitwise-identical results.

Every command is deterministic: the library is a pure function of
``--seed`` (default: the committed library's seed).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.__main__ import add_obs_arguments, run_with_obs
from repro.analysis.sanitize import InvariantViolation, sanitize_enable
from repro.scenarios import library, runner, sweep
from repro.scenarios.generator import DEFAULT_SEED, library_manifest
from repro.scenarios.schema import save_spec


def _cmd_list(args: argparse.Namespace) -> int:
    specs = library.full_library(args.seed)
    if args.family is not None:
        specs = tuple(s for s in specs if s.family == args.family)
    if args.json:
        print(
            json.dumps(
                [
                    {
                        "name": s.name,
                        "family": s.family,
                        "k": len(s.clouds),
                        "hash": s.content_hash(),
                        "description": s.description,
                    }
                    for s in specs
                ],
                indent=2,
            )
        )
        return 0
    for spec in specs:
        print(f"{spec.name:<18} {spec.family:<10} K={len(spec.clouds):<3} {spec.description}")
    print(f"\n{len(specs)} scenarios")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    problems: list[str] = []
    if args.all:
        try:
            specs = library.full_library(args.seed)
        except InvariantViolation as violation:
            print(f"INVALID: {violation}", file=sys.stderr)
            return 1
        print(f"validated {len(specs)} scenarios (seed {args.seed})")
        try:
            manifest = library.committed_manifest()
        except InvariantViolation as violation:
            problems.append(str(violation))
        else:
            problems.extend(library.check_manifest(specs, manifest))
            if not problems:
                print(f"manifest digest ok: {manifest['digest']}")
    else:
        if not args.scenarios:
            print("validate needs scenario names/files or --all", file=sys.stderr)
            return 2
        for name in args.scenarios:
            try:
                spec = library.resolve(name, seed=args.seed)
            except InvariantViolation as violation:
                problems.append(f"{name}: {violation}")
            else:
                print(f"{spec.name}: ok ({spec.content_hash()[:16]})")
    for problem in problems:
        print(f"INVALID: {problem}", file=sys.stderr)
    return 1 if problems else 0


def _cmd_show(args: argparse.Namespace) -> int:
    spec = library.resolve(args.scenario, seed=args.seed)
    print(json.dumps(spec.to_dict(), indent=2, sort_keys=True))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    spec = library.resolve(args.scenario, seed=args.seed)

    def execute() -> int:
        report = runner.run_spec(
            spec,
            mode=args.mode,
            workers=args.workers,
            backend=args.backend,
            cache_dir=args.cache_dir,
            step_mode=args.step_mode,
        )
        print(json.dumps(report, indent=2))
        return 0

    return run_with_obs(args, execute)


def _cmd_generate(args: argparse.Namespace) -> int:
    specs = library.full_library(args.seed)
    manifest = library_manifest(specs, seed=args.seed)
    if args.output is not None:
        directory = Path(args.output)
        directory.mkdir(parents=True, exist_ok=True)
        for spec in specs:
            save_spec(spec, directory / f"{spec.name}.json")
        (directory / "manifest.json").write_text(
            json.dumps(manifest, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {len(specs)} scenarios + manifest to {directory}")
    if args.update_manifest:
        library.write_manifest(seed=args.seed)
        print(f"updated {library.MANIFEST_PATH}")
    if args.check_manifest:
        problems = library.check_manifest(specs, library.committed_manifest())
        for problem in problems:
            print(f"MANIFEST DRIFT: {problem}", file=sys.stderr)
        if problems:
            return 1
        print(f"manifest digest ok: {manifest['digest']}")
    if args.output is None and not args.update_manifest and not args.check_manifest:
        print(json.dumps(manifest, indent=2, sort_keys=True))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    backends = tuple(args.backends.split(","))
    if args.ids:
        specs = [library.resolve(name, seed=args.seed) for name in args.ids.split(",")]
    else:
        pool = library.full_library(args.seed)
        if args.family is not None:
            pool = tuple(s for s in pool if s.family == args.family)
        specs = sweep.smoke_subset(pool, count=args.limit)
    rows = sweep.sweep_scenarios(
        specs, backends=backends, workers=args.workers, cache_dir=args.cache_dir
    )
    print(sweep.render(rows))
    if args.output is not None:
        path = sweep.write_report(rows, backends, args.workers, args.output)
        print(f"report: {path}")
    if not all(row.identical for row in rows):
        print("SWEEP FAILED: backends disagree bitwise", file=sys.stderr)
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI parser (exposed for testing)."""
    parser = argparse.ArgumentParser(prog="repro.scenarios", description=__doc__)
    parser.add_argument(
        "--seed",
        type=int,
        default=DEFAULT_SEED,
        help="library master seed (default: the committed library's)",
    )
    parser.add_argument(
        "--sanitize",
        action="store_true",
        help="enable the runtime stochastic sanitizer (REPRO_SANITIZE=1)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    cmd_list = sub.add_parser("list", help="enumerate the scenario library")
    cmd_list.add_argument("--family", default=None, help="only this family")
    cmd_list.add_argument("--json", action="store_true", help="machine-readable output")
    cmd_list.set_defaults(func=_cmd_list)

    validate = sub.add_parser("validate", help="strict schema validation")
    validate.add_argument("scenarios", nargs="*", help="library names or JSON files")
    validate.add_argument(
        "--all",
        action="store_true",
        help="regenerate the library, validate every entry, check the manifest digest",
    )
    validate.set_defaults(func=_cmd_validate)

    show = sub.add_parser("show", help="print one scenario as JSON")
    show.add_argument("scenario", help="library name or JSON file")
    show.set_defaults(func=_cmd_show)

    run = sub.add_parser("run", help="drive one scenario end to end")
    run.add_argument("scenario", help="library name or JSON file")
    run.add_argument(
        "--mode", choices=["solve", "simulate"], default="solve",
        help="market loop (solve) or event-driven simulator (simulate)",
    )
    run.add_argument("--workers", type=int, default=None, help="override run-config workers")
    run.add_argument(
        "--backend",
        choices=["serial", "thread", "process"],
        default=None,
        help="override run-config backend",
    )
    run.add_argument("--cache-dir", default=None, help="persistent model-solution cache")
    run.add_argument(
        "--step-mode",
        choices=["event", "batched", "three_phase"],
        default="event",
        help="simulator stepping mode for --mode simulate (all bit-identical)",
    )
    add_obs_arguments(run)
    run.set_defaults(func=_cmd_run)

    generate = sub.add_parser("generate", help="write the library and its manifest")
    generate.add_argument("--output", default=None, metavar="DIR", help="write scenario files here")
    generate.add_argument(
        "--update-manifest",
        action="store_true",
        help="rewrite the committed package manifest",
    )
    generate.add_argument(
        "--check-manifest",
        action="store_true",
        help="fail if the regenerated library drifts from the committed manifest",
    )
    generate.set_defaults(func=_cmd_generate)

    cmd_sweep = sub.add_parser(
        "sweep", help="fan scenarios across backends; assert bitwise identity"
    )
    cmd_sweep.add_argument("--ids", default=None, help="comma-separated scenario names")
    cmd_sweep.add_argument("--family", default=None, help="restrict the pool to a family")
    cmd_sweep.add_argument(
        "--limit", type=int, default=4, help="smoke-subset size when --ids is absent"
    )
    cmd_sweep.add_argument("--workers", type=int, default=2, help="parallel width per backend")
    cmd_sweep.add_argument(
        "--backends",
        default=",".join(sweep.DEFAULT_BACKENDS),
        help="comma-separated executor backends",
    )
    cmd_sweep.add_argument("--cache-dir", default=None, help="persistent model-solution cache")
    cmd_sweep.add_argument("--output", default=None, metavar="DIR", help="write sweep report here")
    cmd_sweep.set_defaults(func=_cmd_sweep)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.sanitize:
        sanitize_enable()
    result: int = args.func(args)
    return result


if __name__ == "__main__":
    sys.exit(main())
