"""Fan a scenario subset across executor backends, bit-identically.

The runtime's determinism contract says parallelism is a wall-clock
knob, never a semantics knob.  The sweep runner spends that contract on
the scenario library: each selected scenario's market run is replayed
under serial, thread, and process executors, every outcome is digested
with ``float.hex`` (no tolerance), and a single mismatched bit anywhere
fails the sweep.  CI runs a seeded 4-scenario smoke through this module;
``python -m repro.scenarios sweep`` exposes the full surface.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro._validation import check_positive_int, require
from repro.scenarios.runner import (
    observables_digest,
    outcome_observables,
    solve_spec,
)
from repro.scenarios.schema import ScenarioSpec

DEFAULT_BACKENDS = ("serial", "thread", "process")


@dataclass(frozen=True)
class SweepRow:
    """One scenario's cross-backend result."""

    name: str
    family: str
    k: int
    digests: dict[str, str]
    welfare: float
    equilibrium: tuple[int, ...]
    iterations: int

    @property
    def identical(self) -> bool:
        """Whether every backend produced the same bitwise digest."""
        return len(set(self.digests.values())) == 1

    def __post_init__(self) -> None:
        require(bool(self.digests), "a sweep row needs at least one backend digest")


#: Federations larger than this never enter the smoke subset: a full
#: market game's cost scales with K as well as with VM counts, so a
#: 3-VM/50-SC scenario is far more expensive than any small federation
#: the VM-first sort would rank behind it.
_SMOKE_MAX_K = 10


def smoke_subset(
    specs: tuple[ScenarioSpec, ...] | list[ScenarioSpec], count: int = 4
) -> list[ScenarioSpec]:
    """The ``count`` cheapest scenarios, picked deterministically.

    Sorting by (largest SC, federation size, name) keeps the smoke run
    inside a CI budget regardless of what the generator drew.
    Federations beyond ``_SMOKE_MAX_K`` SCs (the ``largek`` family) sort
    behind every small one regardless of VM count — their scale
    coverage lives in the non-blocking ``kscale-smoke`` CI job, not the
    bitwise smoke sweep.
    """
    check_positive_int(count, "count")
    ordered = sorted(
        specs,
        key=lambda s: (
            len(s.clouds) > _SMOKE_MAX_K,
            max(c.vms for c in s.clouds),
            len(s.clouds),
            s.name,
        ),
    )
    return ordered[:count]


def sweep_scenarios(
    specs: list[ScenarioSpec],
    backends: tuple[str, ...] = DEFAULT_BACKENDS,
    workers: int = 2,
    cache_dir: str | None = None,
) -> list[SweepRow]:
    """Run each scenario under every backend; digest each run bitwise."""
    require(bool(specs), "sweep needs at least one scenario")
    require(bool(backends), "sweep needs at least one backend")
    rows = []
    for spec in specs:
        digests: dict[str, str] = {}
        welfare = 0.0
        equilibrium: tuple[int, ...] = ()
        iterations = 0
        for backend in backends:
            outcome = solve_spec(
                spec, workers=workers, backend=backend, cache_dir=cache_dir
            )
            digests[backend] = observables_digest(outcome_observables(outcome))
            welfare = outcome.welfare
            equilibrium = outcome.equilibrium
            iterations = outcome.game.iterations
        rows.append(
            SweepRow(
                name=spec.name,
                family=spec.family,
                k=len(spec.clouds),
                digests=digests,
                welfare=welfare,
                equilibrium=equilibrium,
                iterations=iterations,
            )
        )
    return rows


def render(rows: list[SweepRow]) -> str:
    """A fixed-width table of the sweep results."""
    header = f"{'scenario':<18} {'family':<10} {'K':>2} {'iters':>5} {'welfare':>12} {'bit-identical':>13}  digest"
    lines = [header, "-" * len(header)]
    for row in rows:
        reference = next(iter(row.digests.values()))
        lines.append(
            f"{row.name:<18} {row.family:<10} {row.k:>2} {row.iterations:>5} "
            f"{row.welfare:>12.6g} {str(row.identical):>13}  {reference[:16]}"
        )
    return "\n".join(lines)


def report_dict(rows: list[SweepRow], backends: tuple[str, ...], workers: int) -> dict[str, Any]:
    """JSON-able sweep report (the CI artifact)."""
    return {
        "format_version": 1,
        "backends": list(backends),
        "workers": workers,
        "all_identical": all(row.identical for row in rows),
        "rows": [
            {
                "name": row.name,
                "family": row.family,
                "k": row.k,
                "iterations": row.iterations,
                "welfare": float(row.welfare).hex(),
                "equilibrium": list(row.equilibrium),
                "identical": row.identical,
                "digests": dict(row.digests),
            }
            for row in rows
        ],
    }


def write_report(
    rows: list[SweepRow],
    backends: tuple[str, ...],
    workers: int,
    output_dir: str | Path,
) -> Path:
    """Write the table and the JSON report into ``output_dir``."""
    directory = Path(output_dir)
    directory.mkdir(parents=True, exist_ok=True)
    (directory / "sweep.txt").write_text(render(rows) + "\n")
    path = directory / "sweep.json"
    path.write_text(
        json.dumps(report_dict(rows, backends, workers), indent=2, sort_keys=True) + "\n"
    )
    return path
