"""The Sect. III-A no-sharing performance model.

A small cloud outside the federation is a birth–death chain on the number
of requests in its system: arrivals join at full rate while a VM is free,
join with probability ``P^NF`` when all VMs are busy (otherwise they are
forwarded to the public cloud), and departures occur at rate
``min(q, N) mu``.  The chain is truncated where the SLA tail makes further
queue growth negligible; the truncation level is chosen automatically and
checked.

Outputs (used by Eq. (1) and Eq. (2) of the paper):

- ``forward_rate``: ``Pbar^0 = lambda * P^F``, the mean rate of requests
  sent to the public cloud,
- ``forward_probability``: ``P^F``,
- ``utilization``: ``rho^0``, the fraction of busy VM capacity,
- the full stationary distribution for diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro._validation import check_non_negative, check_positive, check_positive_int
from repro.exceptions import TruncationError
from repro.markov.birth_death import BirthDeathChain
from repro.queueing.sla import prob_no_forward

_TAIL_EPSILON = 1e-12
_MAX_EXTRA_LEVELS = 100_000


def queue_truncation_level(
    servers: int, service_rate: float, sla_bound: float, epsilon: float = _TAIL_EPSILON
) -> int:
    """Return a queue length beyond which SLA-queueing is negligible.

    Finds the smallest waiting count ``w`` with
    ``P^NF(w, servers, mu, Q) < epsilon`` and returns ``servers + w + 1``
    (total in system).  With SLA thinning the queue cannot effectively grow
    past this point, so truncating there loses less than ``epsilon`` flow.
    """
    if sla_bound == 0.0:
        return servers + 1
    w = 0
    while prob_no_forward(w, servers, service_rate, sla_bound) >= epsilon:
        w += 1
        if w > _MAX_EXTRA_LEVELS:
            raise TruncationError(
                "SLA queue does not truncate; check service_rate and sla_bound"
            )
    return servers + w + 1


@dataclass(frozen=True)
class NoSharingResult:
    """Stationary metrics of a small cloud outside the federation.

    Attributes:
        forward_probability: ``P^F``, probability an arrival is forwarded.
        forward_rate: ``Pbar^0 = lambda * P^F`` (requests/second).
        utilization: ``rho^0``, mean busy VMs divided by ``N``.
        mean_in_system: mean number of requests present.
        mean_waiting: mean number of requests waiting for a VM.
        distribution: stationary distribution over ``q = 0 .. q_max``.
    """

    forward_probability: float
    forward_rate: float
    utilization: float
    mean_in_system: float
    mean_waiting: float
    distribution: np.ndarray


class NoSharingModel:
    """Performance model of one SC that shares nothing (Sect. III-A).

    Args:
        servers: number of VMs ``N``.
        arrival_rate: Poisson request rate ``lambda``.
        service_rate: per-VM exponential rate ``mu``.
        sla_bound: SLA waiting bound ``Q`` (seconds); 0 means requests
            never wait (pure loss to the public cloud when busy).
        tail_epsilon: truncation tolerance for the queue.
    """

    def __init__(
        self,
        servers: int,
        arrival_rate: float,
        service_rate: float,
        sla_bound: float,
        tail_epsilon: float = _TAIL_EPSILON,
    ) -> None:
        self.servers = check_positive_int(servers, "servers")
        self.arrival_rate = check_positive(arrival_rate, "arrival_rate")
        self.service_rate = check_positive(service_rate, "service_rate")
        self.sla_bound = check_non_negative(sla_bound, "sla_bound")
        self.tail_epsilon = check_positive(tail_epsilon, "tail_epsilon")
        self.q_max = queue_truncation_level(
            self.servers, self.service_rate, self.sla_bound, self.tail_epsilon
        )

    def queueing_probability(self, in_system: int) -> float:
        """``P^NF`` seen by an arrival finding ``in_system`` requests."""
        if in_system < self.servers:
            return 1.0
        return prob_no_forward(
            in_system - self.servers, self.servers, self.service_rate, self.sla_bound
        )

    def chain(self) -> BirthDeathChain:
        """Return the truncated birth–death chain of the model."""
        births = [
            self.arrival_rate * self.queueing_probability(q) for q in range(self.q_max)
        ]
        deaths = [
            min(q + 1, self.servers) * self.service_rate for q in range(self.q_max)
        ]
        return BirthDeathChain(births, deaths)

    @cached_property
    def result(self) -> NoSharingResult:
        """Solve the chain and compute all stationary metrics (cached)."""
        pi = self.chain().stationary()
        levels = np.arange(self.q_max + 1)
        busy = np.minimum(levels, self.servers)
        forward_prob = float(
            sum(
                (1.0 - self.queueing_probability(q)) * pi[q]
                for q in range(self.servers, self.q_max + 1)
            )
        )
        utilization = float(np.dot(busy, pi)) / self.servers
        mean_in_system = float(np.dot(levels, pi))
        mean_waiting = float(np.dot(np.maximum(levels - self.servers, 0), pi))
        return NoSharingResult(
            forward_probability=forward_prob,
            forward_rate=self.arrival_rate * forward_prob,
            utilization=utilization,
            mean_in_system=mean_in_system,
            mean_waiting=mean_waiting,
            distribution=pi,
        )

    @property
    def forward_probability(self) -> float:
        """``P^F`` (convenience accessor)."""
        return self.result.forward_probability

    @property
    def forward_rate(self) -> float:
        """``Pbar^0`` (convenience accessor)."""
        return self.result.forward_rate

    @property
    def utilization(self) -> float:
        """``rho^0`` (convenience accessor)."""
        return self.result.utilization
