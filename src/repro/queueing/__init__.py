"""Queueing-theory substrate.

Provides the classical formulas used as analytic anchors (Erlang-B/C,
M/M/c) and the SC-Share specific pieces:

- :mod:`repro.queueing.sla` — the SLA no-forward probability ``P^NF``
  (a Poisson tail on the waiting-time bound).
- :mod:`repro.queueing.forwarding` — the Sect. III-A model of a small
  cloud that does not share: a birth–death chain with SLA-thinned
  arrivals, giving the public-cloud forwarding rate ``Pbar^0`` and the
  baseline utilization ``rho^0``.
"""

from repro.queueing.erlang import erlang_b, erlang_c
from repro.queueing.forwarding import NoSharingModel, NoSharingResult
from repro.queueing.mmc import MMCQueue
from repro.queueing.sla import prob_forward, prob_no_forward
from repro.queueing.waiting_time import WaitingTimeAnalysis, wait_cdf_at_admission

__all__ = [
    "MMCQueue",
    "NoSharingModel",
    "NoSharingResult",
    "erlang_b",
    "erlang_c",
    "prob_forward",
    "prob_no_forward",
    "WaitingTimeAnalysis",
    "wait_cdf_at_admission",
]
