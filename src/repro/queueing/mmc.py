"""M/M/c queue metrics.

A thin analytic layer over :func:`repro.queueing.erlang.erlang_c` giving
the standard stationary metrics.  Used as ground truth in tests of the
birth–death and CTMC solvers and by the pooled fast performance model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro._validation import check_positive, check_positive_int
from repro.exceptions import ConfigurationError
from repro.queueing.erlang import erlang_c


@dataclass(frozen=True)
class MMCQueue:
    """An M/M/c queue with Poisson arrivals and exponential service.

    Attributes:
        arrival_rate: Poisson arrival rate ``lambda``.
        service_rate: per-server service rate ``mu``.
        servers: number of servers ``c``.
    """

    arrival_rate: float
    service_rate: float
    servers: int

    def __post_init__(self) -> None:
        check_positive(self.arrival_rate, "arrival_rate")
        check_positive(self.service_rate, "service_rate")
        check_positive_int(self.servers, "servers")
        if self.offered_load >= self.servers:
            raise ConfigurationError(
                "M/M/c requires lambda/mu < c for stability; got "
                f"load {self.offered_load} with c={self.servers}"
            )

    @property
    def offered_load(self) -> float:
        """Offered load ``a = lambda / mu`` in Erlangs."""
        return self.arrival_rate / self.service_rate

    @property
    def utilization(self) -> float:
        """Per-server utilization ``rho = a / c``."""
        return self.offered_load / self.servers

    def wait_probability(self) -> float:
        """Probability an arrival waits (Erlang-C)."""
        return erlang_c(self.offered_load, self.servers)

    def mean_wait(self) -> float:
        """Mean waiting time in queue ``Wq``."""
        c = self.servers
        mu = self.service_rate
        return self.wait_probability() / (c * mu - self.arrival_rate)

    def mean_queue_length(self) -> float:
        """Mean number waiting in queue ``Lq`` (Little's law)."""
        return self.arrival_rate * self.mean_wait()

    def mean_in_system(self) -> float:
        """Mean number in system ``L = Lq + a``."""
        return self.mean_queue_length() + self.offered_load

    def wait_exceeds(self, threshold: float) -> float:
        """Return ``P[Wq > t]`` for the FCFS M/M/c queue.

        ``P[Wq > t] = C * exp(-(c mu - lambda) t)`` where ``C`` is the
        Erlang-C delay probability.
        """
        if threshold < 0:
            raise ConfigurationError(f"threshold must be >= 0, got {threshold}")
        c = self.servers
        decay = c * self.service_rate - self.arrival_rate
        return self.wait_probability() * math.exp(-decay * threshold)
