"""Erlang loss and delay formulas.

Computed with the standard numerically stable recurrences (never the raw
factorial ratios).  These serve as analytic anchors for the Markov-chain
machinery: an M/M/c/c chain's blocking probability must match Erlang-B,
and an M/M/c chain's delay probability must match Erlang-C.
"""

from __future__ import annotations

from repro._validation import check_positive, check_positive_int
from repro.exceptions import ConfigurationError


def erlang_b(offered_load: float, servers: int) -> float:
    """Return the Erlang-B blocking probability.

    Args:
        offered_load: ``a = lambda / mu`` in Erlangs (> 0).
        servers: number of servers ``c`` (>= 1).

    Uses the recurrence ``B(0) = 1``,
    ``B(c) = a B(c-1) / (c + a B(c-1))``.
    """
    a = check_positive(offered_load, "offered_load")
    c = check_positive_int(servers, "servers")
    b = 1.0
    for k in range(1, c + 1):
        b = a * b / (k + a * b)
    return b


def erlang_c(offered_load: float, servers: int) -> float:
    """Return the Erlang-C probability that an arrival must wait.

    Args:
        offered_load: ``a = lambda / mu`` in Erlangs; must satisfy
            ``a < servers`` for stability.
        servers: number of servers ``c``.

    Uses ``C = c B / (c - a (1 - B))`` with ``B`` from :func:`erlang_b`.
    """
    a = check_positive(offered_load, "offered_load")
    c = check_positive_int(servers, "servers")
    if a >= c:
        raise ConfigurationError(
            f"Erlang-C requires offered load < servers, got a={a}, c={c}"
        )
    b = erlang_b(a, c)
    return c * b / (c - a * (1.0 - b))
