"""Waiting-time analysis for the SLA-gated queue (Sect. III-A model).

The no-sharing model admits a request to the queue only when its wait is
likely to meet the bound ``Q``; this module computes the *realized*
waiting-time distribution of admitted requests — the customer-facing
metric behind the SLA:

- :func:`wait_cdf_at_admission`: the wait CDF of a request admitted when
  ``w`` others are waiting (an Erlang(w+1, c*mu) distribution — it needs
  ``w + 1`` departures from ``c`` busy exponential servers).
- :class:`WaitingTimeAnalysis`: stationary mixture over admission states,
  weighted by the SLA-thinned arrival flow, yielding P[W > t], the mean
  admitted wait, and the residual SLA-violation probability (requests the
  probabilistic gate admitted but that still miss ``Q``).

The residual violation probability quantifies the quality of the paper's
admission rule: it is exactly the mass the Poisson-tail gate lets through
wrongly, and the simulator's ``sla_violations`` counter measures the same
thing empirically (tests tie the two together).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro._validation import check_non_negative, require
from repro.markov.fox_glynn import poisson_cdf
from repro.queueing.forwarding import NoSharingModel


def wait_cdf_at_admission(
    waiting_ahead: int, busy: int, service_rate: float, t: float
) -> float:
    """``P[W <= t]`` for a request admitted behind ``waiting_ahead`` others.

    The wait is the time to ``waiting_ahead + 1`` departures from ``busy``
    busy exponential servers — an Erlang distribution whose CDF is a
    Poisson tail: ``P[W <= t] = P[Poisson(busy mu t) >= waiting_ahead+1]``.

    Args:
        waiting_ahead: queued requests ahead (>= 0).
        busy: busy servers (> 0 for a finite wait).
        service_rate: per-server rate ``mu``.
        t: the time bound (>= 0).
    """
    check_non_negative(t, "t")
    if waiting_ahead < 0:
        return 1.0
    if busy <= 0:
        return 0.0
    return max(0.0, 1.0 - poisson_cdf(waiting_ahead, busy * service_rate * t))


@dataclass(frozen=True)
class WaitingTimeSummary:
    """Customer-facing waiting metrics of the SLA-gated queue.

    Attributes:
        delay_probability: fraction of *served* requests that waited.
        mean_wait: mean wait over all served requests (immediate = 0).
        mean_wait_delayed: mean wait conditional on waiting.
        residual_violation: fraction of served requests whose realized
            wait still exceeded the SLA bound (admission-gate leakage).
    """

    delay_probability: float
    mean_wait: float
    mean_wait_delayed: float
    residual_violation: float


class WaitingTimeAnalysis:
    """Stationary waiting-time distribution of one SLA-gated SC.

    Args:
        model: a solved :class:`~repro.queueing.forwarding.NoSharingModel`.
    """

    def __init__(self, model: NoSharingModel) -> None:
        require(
            isinstance(model, NoSharingModel),
            f"model must be a solved NoSharingModel, got {type(model).__name__}",
        )
        self.model = model

    @cached_property
    def _admission_mix(self) -> tuple[np.ndarray, np.ndarray]:
        """(weights, waiting_ahead) over admission states.

        Weight of state q is the stationary probability times the
        admission probability (PASTA gives arriving customers the
        stationary view; the SLA gate thins states with long queues).
        """
        model = self.model
        pi = model.result.distribution
        weights = []
        ahead = []
        for q, probability in enumerate(pi):
            admit = model.queueing_probability(q)
            if admit <= 0.0:
                continue
            weights.append(probability * admit)
            ahead.append(max(q - model.servers, 0) if q >= model.servers else -1)
        weights_arr = np.asarray(weights)
        return weights_arr / weights_arr.sum(), np.asarray(ahead)

    def survival(self, t: float) -> float:
        """``P[W > t]`` over served requests."""
        check_non_negative(t, "t")
        weights, ahead = self._admission_mix
        total = 0.0
        for weight, w in zip(weights, ahead):
            if w < 0:
                continue  # served immediately
            total += weight * (
                1.0
                - wait_cdf_at_admission(
                    int(w), self.model.servers, self.model.service_rate, t
                )
            )
        return total

    def summary(self) -> WaitingTimeSummary:
        """Compute all waiting metrics."""
        weights, ahead = self._admission_mix
        delayed_mask = ahead >= 0
        delay_probability = float(weights[delayed_mask].sum())
        # Admitted behind w others: mean wait = (w+1) / (c mu).
        c_mu = self.model.servers * self.model.service_rate
        mean_wait = float(
            sum(
                weight * (w + 1) / c_mu
                for weight, w in zip(weights, ahead)
                if w >= 0
            )
        )
        mean_wait_delayed = (
            mean_wait / delay_probability if delay_probability > 0 else 0.0
        )
        residual = self.survival(self.model.sla_bound)
        return WaitingTimeSummary(
            delay_probability=delay_probability,
            mean_wait=mean_wait,
            mean_wait_delayed=mean_wait_delayed,
            residual_violation=residual,
        )
