"""SLA waiting-time bound: the no-forward probability ``P^NF``.

Sect. III-A of SC-Share: a request arriving at a fully busy small cloud is
queued only if its service can start within the SLA bound ``Q``; otherwise
it is forwarded to a public cloud.  With ``w`` requests already waiting and
``c`` busy VMs (exponential service, rate ``mu`` each), the arriving
request starts service after ``w + 1`` departures, and departures form a
Poisson process of rate ``c mu``.  Hence

    P^NF = P[wait <= Q] = P[Poisson(c mu Q) >= w + 1]
         = 1 - sum_{j=0}^{w} e^{-c mu Q} (c mu Q)^j / j!

which is the paper's formula with ``w = q - N``.  This module is the single
canonical implementation used by the no-sharing model, the detailed CTMC,
the approximate model and the simulator.
"""

from __future__ import annotations

from functools import lru_cache

from repro._validation import check_non_negative, check_non_negative_int, check_positive
from repro.markov.fox_glynn import poisson_cdf


@lru_cache(maxsize=1_000_000)
def _cached_tail(waiting: int, rate: float) -> float:
    return max(0.0, 1.0 - poisson_cdf(waiting, rate))


def prob_no_forward(waiting: int, busy: int, service_rate: float, sla_bound: float) -> float:
    """Probability that an arriving request is queued (not forwarded).

    Args:
        waiting: number of requests already waiting ahead of the arrival
            (``w = q - N`` in the paper's notation); negative values mean a
            free VM exists and the probability is 1.
        busy: number of busy VMs currently serving (``c``); if zero while
            requests wait, no departure can occur and the probability is 0.
        service_rate: per-VM exponential service rate ``mu``.
        sla_bound: the SLA waiting-time bound ``Q`` (>= 0).

    Returns:
        ``P^NF`` in [0, 1].

    Note:
        This function sits on the hottest path of every model (it is
        evaluated per CTMC state per fixed-point iteration), so argument
        validation is deliberately minimal: invalid rates raise, but
        fractional counts are truncated rather than rejected.
    """
    if service_rate <= 0.0:
        check_positive(service_rate, "service_rate")
    if sla_bound < 0.0:
        check_non_negative(sla_bound, "sla_bound")
    if waiting < 0:
        return 1.0
    if busy <= 0:
        return 0.0
    rate = busy * service_rate * sla_bound
    return _cached_tail(int(waiting), rate)


def prob_forward(waiting: int, busy: int, service_rate: float, sla_bound: float) -> float:
    """Probability that an arriving request is forwarded to the public cloud.

    The complement of :func:`prob_no_forward`.
    """
    return 1.0 - prob_no_forward(waiting, busy, service_rate, sla_bound)


def prob_no_forward_total(
    in_system: int, servers: int, service_rate: float, sla_bound: float
) -> float:
    """Paper-notation wrapper ``P^NF(q, N, Q)`` taking the total in system.

    Args:
        in_system: total requests in the system ``q`` at the arrival epoch.
        servers: capacity ``N`` (all busy when ``q >= N``).
        service_rate: per-VM rate ``mu``.
        sla_bound: SLA bound ``Q``.
    """
    check_non_negative_int(in_system, "in_system")
    check_non_negative_int(servers, "servers")
    if in_system < servers:
        return 1.0
    return prob_no_forward(in_system - servers, servers, service_rate, sla_bound)
