"""Lightweight profiling hooks: per-span cProfile opt-in.

Two entry points:

- :func:`profile_enable` — arm span-level profiling for a set of span
  names.  While armed, entering a matching span starts a
  :class:`cProfile.Profile` and exiting it attaches the top-N rows (by
  cumulative time) to the span's attributes under ``"profile"``.
  ``cProfile`` cannot nest, so at most one profiler runs per process at
  a time; spans that match while another profiler is live are skipped
  (deterministically: the outermost matching span wins).
- :func:`profiled` — a context manager profiling an entire block and
  printing the top-N report to a stream; this backs the ``--profile``
  CLI flag.

Profiling is a per-process debugging aid: it is deliberately *not*
replayed into executor workers (a pool of workers all tracing into one
``cProfile`` would be meaningless), and it is never consulted on the
disabled path — :mod:`repro.obs` only calls in here when the master
switch is on.
"""

from __future__ import annotations

import cProfile
import io
import pstats
from collections.abc import Iterator
from contextlib import contextmanager
from typing import TextIO

from repro._validation import check_positive_int

__all__ = [
    "profile_disable",
    "profile_enable",
    "profiled",
    "profiling_names",
    "top_stats",
]

#: Span names armed for profiling; ``None`` means profiling is off.
_names: frozenset[str] | None = None

#: Top-N rows attached per profiled span.
_top_n: int = 20

#: The one live profiler (cProfile cannot nest).
_live: cProfile.Profile | None = None


def profile_enable(names: frozenset[str] | set[str], top_n: int = 20) -> None:
    """Arm span-level profiling for spans named in ``names``."""
    # Per-process debugging state, toggled once around a run by the CLI
    # or a test; never mutated concurrently with traced work.
    global _names, _top_n  # repro: noqa[RPR205]
    _top_n = check_positive_int(top_n, "top_n")
    _names = frozenset(names)


def profile_disable() -> None:
    """Disarm span-level profiling."""
    global _names  # repro: noqa[RPR205]
    _names = None


def profiling_names() -> frozenset[str] | None:
    """The armed span names (``None`` when span profiling is off)."""
    return _names


def maybe_start(name: str) -> cProfile.Profile | None:
    """Start a profiler for span ``name`` if armed and none is live."""
    global _live  # repro: noqa[RPR205]
    if _names is None or name not in _names or _live is not None:
        return None
    profiler = cProfile.Profile()
    _live = profiler
    profiler.enable()
    return profiler


def stop(profiler: cProfile.Profile) -> list[dict[str, object]]:
    """Stop a profiler started by :func:`maybe_start`; return top rows."""
    global _live  # repro: noqa[RPR205]
    profiler.disable()
    if _live is profiler:
        _live = None
    return top_stats(profiler, _top_n)


def top_stats(
    profiler: cProfile.Profile, top_n: int
) -> list[dict[str, object]]:
    """The ``top_n`` functions by cumulative time, as plain dicts."""
    stats = pstats.Stats(profiler, stream=io.StringIO())
    rows: list[dict[str, object]] = []
    # ``Stats.stats`` predates typeshed; fetch it dynamically so the
    # module stays strict-clean on every stub version.
    raw: dict[tuple[str, int, str], tuple[int, int, float, float, dict]] = (
        getattr(stats, "stats", {})
    )
    entries = sorted(
        raw.items(),
        key=lambda item: item[1][3],  # cumulative time
        reverse=True,
    )
    for (filename, line, function), (
        primitive_calls,
        ncalls,
        tottime,
        cumtime,
        _callers,
    ) in entries[:top_n]:
        rows.append(
            {
                "function": f"{filename}:{line}({function})",
                "ncalls": ncalls,
                "primitive_calls": primitive_calls,
                "tottime": tottime,
                "cumtime": cumtime,
            }
        )
    return rows


@contextmanager
def profiled(stream: TextIO, top_n: int = 30) -> Iterator[cProfile.Profile]:
    """Profile the enclosed block; print a cumulative report to ``stream``.

    Backs the ``--profile`` CLI flag on ``repro.__main__`` and
    ``repro.bench.runner``.
    """
    top_n = check_positive_int(top_n, "top_n")
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield profiler
    finally:
        profiler.disable()
        stats = pstats.Stats(profiler, stream=stream)
        stats.sort_stats("cumulative")
        stream.write(f"-- profile (top {top_n} by cumulative time) --\n")
        stats.print_stats(top_n)
