"""Hierarchical tracing spans for the observability layer.

A :class:`Span` measures one region of work — a game round, a chain
solve, an executor map — and carries a wall-clock timestamp, a
perf-counter duration, a CPU-time duration, structured attributes, and a
bounded list of point events (the simulator's trace events attach here).
Spans nest through a per-thread stack: entering a span pushes it,
exiting pops it and attaches it to its parent (or to the
:class:`Tracer`'s roots when it is outermost), so a traced run yields a
tree that mirrors the dynamic call structure.

Design constraints inherited from the runtime package:

- **Thread affinity** — a span must be entered and exited on the same
  thread (the with-statement guarantees this).  Spans opened on executor
  worker threads become roots of their own subtrees; the tracer collects
  roots from every thread under its lock.
- **Determinism** — spans are observers only.  They never feed cache
  fingerprints, never reorder work, and carry no randomness; the *shape*
  of the tree (names, nesting, counts) is a pure function of the traced
  workload, which is what the golden-trace tests pin down.
- **Process pools** — tracing is per-process.  A tracer deliberately
  pickles as configuration only (like :class:`repro.runtime.memo.LRUCache`):
  worker processes do not stream spans back, they contribute *metrics*
  snapshots instead (see :mod:`repro.obs.metrics`).
"""

from __future__ import annotations

import threading
import time
from types import TracebackType
from typing import Any

from repro._validation import check_positive_int

__all__ = ["NoopSpan", "Span", "Tracer", "current_span"]

#: Fields of one point event attached to a span: (kind, time, fields).
EventTuple = tuple[str, "float | None", tuple[tuple[str, object], ...]]


_stack_local = threading.local()


def _stack() -> list["Span"]:
    stack: list[Span] | None = getattr(_stack_local, "spans", None)
    if stack is None:
        stack = []
        _stack_local.spans = stack
    return stack


def current_span() -> "Span | None":
    """The innermost open span on this thread, or ``None``."""
    stack = _stack()
    return stack[-1] if stack else None


class Span:
    """One timed, attributed region of a traced run.

    Built by :meth:`Tracer.span`; use as a context manager.  ``__slots__``
    and skipped validation are deliberate: span creation sits on the hot
    path of every instrumented solve, and the tracer only constructs
    spans from already-validated arguments.
    """

    __slots__ = (
        "name",
        "attrs",
        "children",
        "events",
        "dropped_events",
        "thread_id",
        "start_wall",
        "start_perf",
        "start_cpu",
        "duration",
        "cpu_seconds",
        "_tracer",
    )

    def __init__(  # repro: noqa[RPR104]
        self, tracer: "Tracer", name: str, attrs: dict[str, object]
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.children: list[Span] = []
        self.events: list[EventTuple] = []
        self.dropped_events = 0
        self.thread_id = 0
        self.start_wall = 0.0
        self.start_perf = 0.0
        self.start_cpu = 0.0
        self.duration = 0.0
        self.cpu_seconds = 0.0

    def __enter__(self) -> "Span":
        _stack().append(self)
        self.thread_id = threading.get_ident()
        self.start_wall = time.time()
        self.start_cpu = time.process_time()
        self.start_perf = time.perf_counter()
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.duration = time.perf_counter() - self.start_perf
        self.cpu_seconds = time.process_time() - self.start_cpu
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        stack = _stack()
        if stack and stack[-1] is self:
            stack.pop()
        parent = stack[-1] if stack else None
        self._tracer._finish(self, parent)

    def set(self, **attrs: object) -> None:
        """Attach (or overwrite) attributes on the open span."""
        self.attrs.update(attrs)

    def event(
        self,
        kind: str,
        time: float | None = None,
        fields: tuple[tuple[str, object], ...] = (),
    ) -> None:
        """Attach one point event, subject to the tracer's per-span cap."""
        if len(self.events) >= self._tracer.max_span_events:
            self.dropped_events += 1
            return
        self.events.append((kind, time, fields))


class NoopSpan:
    """The disabled-path span: every operation is a constant no-op.

    A single shared instance is returned by :func:`repro.obs.span` when
    tracing is off, so the disabled hook allocates nothing.
    """

    __slots__ = ()

    def __enter__(self) -> "NoopSpan":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        return None

    def set(self, **attrs: object) -> None:
        return None

    def event(
        self,
        kind: str,
        time: float | None = None,
        fields: tuple[tuple[str, object], ...] = (),
    ) -> None:
        return None


class Tracer:
    """Collects the span forest of one traced run.

    Args:
        max_span_events: per-span cap on attached point events (the same
            bounded-capture discipline as
            :class:`repro.sim.trace.TraceRecorder`).
    """

    def __init__(self, max_span_events: int = 10_000) -> None:
        self.max_span_events = check_positive_int(
            max_span_events, "max_span_events"
        )
        self.start_wall = time.time()
        self.start_perf = time.perf_counter()
        self.roots: list[Span] = []  # guarded-by: _lock
        self.span_count = 0  # guarded-by: _lock
        self._lock = threading.Lock()

    def span(self, name: str, attrs: dict[str, object]) -> Span:
        """Create an (unopened) span; enter it with a ``with`` statement."""
        return Span(self, name, attrs)

    def _finish(self, span: Span, parent: Span | None) -> None:
        """Record a completed span under its parent or as a root."""
        if parent is not None:
            # Same-thread by construction (the per-thread stack), so the
            # parent's child list needs no lock.
            parent.children.append(span)
            with self._lock:
                self.span_count += 1
            return
        with self._lock:
            self.roots.append(span)
            self.span_count += 1

    # -- pickling: ship configuration, not contents -------------------- #
    #
    # Tracing is per-process; executors that pickle task payloads holding
    # a tracer (none do today) must not drag a lock or a span forest
    # across the boundary.  Workers contribute metrics snapshots instead.

    def __getstate__(self) -> dict[str, Any]:
        return {"max_span_events": self.max_span_events}

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.max_span_events = state["max_span_events"]
        self.start_wall = time.time()
        self.start_perf = time.perf_counter()
        self.roots = []
        self.span_count = 0
        self._lock = threading.Lock()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Tracer(roots={len(self.roots)}, spans={self.span_count})"
