"""Golden span-tree shapes: ``python -m repro.obs.goldens``.

A golden trace pins down the *shape* of the span tree a known workload
produces — span names, nesting, and counts, never durations or
attributes — so a refactor that silently changes how many solves or
rounds a game performs fails a test instead of a benchmark.

Shape aggregation: a span's children are reduced to the distinct
``(name, children-shape)`` forms with a count each, so the golden stays
small and is invariant to timing while still detecting structural
drift (an extra round, a lost cache hit that turns into a solve span).

Two goldens are registered (:data:`GOLDENS`): ``quick_game`` pins the
differential checker's quick scenario, and ``failure_outage`` pins a
failure-injected federation run — including the per-span *event-kind
counts* (``failure_start``, ``outage_flush``, ``outage_forward``,
``failure_end``, ...) the simulator's trace recorder forwards into the
``sim.run`` span, so a refactor that silently drops or duplicates
failure transitions fails a test.  Event counts appear in a shape only
when a span actually carries events, so event-free goldens keep their
historical byte-for-byte form.

Check mode (the default) recomputes every registered golden and compares
it to the committed file; ``--update`` regenerates after an
*intentional* structural change::

    python -m repro.obs.goldens                 # check all, exit 0/1
    python -m repro.obs.goldens --golden failure_outage --update
    python -m repro.obs.goldens --update        # rewrite every golden
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro import obs
from repro.obs.tracing import Span, Tracer

__all__ = [
    "DEFAULT_GOLDEN",
    "GOLDENS",
    "main",
    "span_shape",
    "trace_failure_outage",
    "trace_quick_scenario",
    "tracer_shape",
]

#: Where the committed golden lives, relative to the repository root
#: (the CLI is a development tool and is documented to run from there).
DEFAULT_GOLDEN = Path("tests") / "obs" / "goldens" / "quick_game.json"

_GOLDEN_DIR = DEFAULT_GOLDEN.parent


def span_shape(span: Span) -> dict[str, object]:
    """The duration-free shape of one span subtree.

    When the span carries point events (the simulator's forwarded trace
    events), their per-kind counts join the shape under ``"events"`` —
    timing- and attribute-free, like everything else here.  Spans
    without events serialize exactly as they did before the key existed.
    """
    shape: dict[str, object] = {"name": span.name, "children": _aggregate(span.children)}
    if span.events:
        counts: dict[str, int] = {}
        for kind, _time, _fields in span.events:
            counts[kind] = counts.get(kind, 0) + 1
        shape["events"] = counts
    return shape


def _aggregate(children: list[Span]) -> list[dict[str, object]]:
    """Distinct child shapes with counts, in first-seen order."""
    result: list[dict[str, object]] = []
    index: dict[str, int] = {}
    for child in children:
        shape = span_shape(child)
        key = json.dumps(shape, sort_keys=True)
        position = index.get(key)
        if position is None:
            index[key] = len(result)
            entry: dict[str, object] = {
                "name": shape["name"],
                "count": 1,
                "children": shape["children"],
            }
            if "events" in shape:
                entry["events"] = shape["events"]
            result.append(entry)
        else:
            entry = result[position]
            assert isinstance(entry["count"], int)
            entry["count"] = entry["count"] + 1
    return result


def tracer_shape(tracer: Tracer) -> dict[str, object]:
    """The shape of a whole traced run."""
    return {
        "format": "repro.obs.golden",
        "version": 1,
        "span_count": tracer.span_count,
        "roots": _aggregate(tracer.roots),
    }


def trace_quick_scenario() -> Tracer:
    """Run the differential checker's quick scenario, serial, traced.

    Serial and uncached-across-runs by construction (a fresh model per
    call), so the resulting tree shape is a deterministic function of
    the code — exactly what a golden can pin."""
    from repro.analysis.differential import SCENARIOS, _run_cell

    with obs.capture(tracing=True, metrics=False) as cap:
        _run_cell(SCENARIOS["quick"], "serial", "base")
    return cap.tracer


def trace_failure_outage() -> Tracer:
    """Run a fixed failure-injected federation, serial, traced.

    A two-SC federation with one mid-run outage on the loaded SC, run
    with a :class:`~repro.sim.trace.TraceRecorder` attached so every
    simulator event (``failure_start``, ``outage_flush``,
    ``outage_forward``, ``serve_borrowed``, ``failure_end``, ...)
    forwards into the ``sim.run`` span.  Fixed seed and horizon make the
    per-kind event counts a deterministic function of the code — a
    change in failure semantics shifts the counts and fails the golden.
    """
    from repro.core.small_cloud import FederationScenario, SmallCloud
    from repro.sim.failures import FailureWindow
    from repro.sim.federation import FederationSimulator
    from repro.sim.trace import TraceRecorder

    scenario = FederationScenario(
        (
            SmallCloud(name="busy", vms=5, arrival_rate=4.5, shared_vms=2, sla_bound=0.5),
            SmallCloud(name="calm", vms=5, arrival_rate=2.0, shared_vms=2, sla_bound=0.5),
        )
    )
    failures = (FailureWindow(kind="outage", sc=0, start=40.0, end=90.0),)
    with obs.capture(tracing=True, metrics=False) as cap:
        # Seed chosen so the outage hits a non-empty queue: the golden
        # pins the flush path (outage_flush) alongside the other kinds.
        simulator = FederationSimulator(
            scenario, seed=2028, trace=TraceRecorder(), failures=failures
        )
        simulator.run(horizon=150.0, warmup=10.0)
    return cap.tracer


#: Registered goldens: name -> (committed path, tracer factory).
GOLDENS: "dict[str, tuple[Path, Callable[[], Tracer]]]" = {
    "quick_game": (DEFAULT_GOLDEN, trace_quick_scenario),
    "failure_outage": (_GOLDEN_DIR / "failure_outage.json", trace_failure_outage),
}


def _run_golden(name: str, path: Path, update: bool) -> int:
    """Check or rewrite one golden.  Returns a process exit code."""
    shape = tracer_shape(GOLDENS[name][1]())
    if update:
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(shape, indent=2, sort_keys=True) + "\n")
        print(f"wrote {path} ({shape['span_count']} spans)")
        return 0

    try:
        golden = json.loads(path.read_text())
    except OSError as exc:
        print(f"golden unreadable ({exc}); regenerate with --update")
        return 1
    if golden == shape:
        print(f"golden trace shape matches ({name}, {shape['span_count']} spans)")
        return 0
    print(
        f"golden trace shape MISMATCH ({name}): "
        f"golden has {golden.get('span_count')} spans, "
        f"current run has {shape['span_count']}. "
        "If the structural change is intentional, regenerate with "
        "`python -m repro.obs.goldens --update`."
    )
    return 1


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.goldens",
        description="check or regenerate the committed golden trace shapes",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the goldens instead of checking against them",
    )
    parser.add_argument(
        "--golden",
        choices=sorted(GOLDENS),
        default=None,
        help="limit to one golden (default: all; --path implies quick_game)",
    )
    parser.add_argument(
        "--path",
        type=str,
        default=None,
        help=f"override the golden file location (default: {DEFAULT_GOLDEN})",
    )
    args = parser.parse_args(argv)

    if args.path is not None:
        # Historical single-golden interface: an explicit --path selects
        # one golden (quick_game unless --golden says otherwise) at a
        # caller-chosen location.
        name = args.golden or "quick_game"
        return _run_golden(name, Path(args.path), args.update)
    names = [args.golden] if args.golden else list(GOLDENS)
    worst = 0
    for name in names:
        worst = max(worst, _run_golden(name, GOLDENS[name][0], args.update))
    return worst


if __name__ == "__main__":
    sys.exit(main())
