"""Golden span-tree shapes: ``python -m repro.obs.goldens``.

A golden trace pins down the *shape* of the span tree a known workload
produces — span names, nesting, and counts, never durations or
attributes — so a refactor that silently changes how many solves or
rounds a game performs fails a test instead of a benchmark.

Shape aggregation: a span's children are reduced to the distinct
``(name, children-shape)`` forms with a count each, so the golden stays
small and is invariant to timing while still detecting structural
drift (an extra round, a lost cache hit that turns into a solve span).

Check mode (the default) recomputes the shape of the quick differential
scenario and compares it to the committed golden; ``--update``
regenerates the golden after an *intentional* structural change::

    python -m repro.obs.goldens                 # check, exit 0/1
    python -m repro.obs.goldens --update        # rewrite the golden
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro import obs
from repro.obs.tracing import Span, Tracer

__all__ = [
    "DEFAULT_GOLDEN",
    "main",
    "span_shape",
    "trace_quick_scenario",
    "tracer_shape",
]

#: Where the committed golden lives, relative to the repository root
#: (the CLI is a development tool and is documented to run from there).
DEFAULT_GOLDEN = Path("tests") / "obs" / "goldens" / "quick_game.json"


def span_shape(span: Span) -> dict[str, object]:
    """The duration-free shape of one span subtree."""
    return {"name": span.name, "children": _aggregate(span.children)}


def _aggregate(children: list[Span]) -> list[dict[str, object]]:
    """Distinct child shapes with counts, in first-seen order."""
    result: list[dict[str, object]] = []
    index: dict[str, int] = {}
    for child in children:
        shape = span_shape(child)
        key = json.dumps(shape, sort_keys=True)
        position = index.get(key)
        if position is None:
            index[key] = len(result)
            result.append(
                {
                    "name": shape["name"],
                    "count": 1,
                    "children": shape["children"],
                }
            )
        else:
            entry = result[position]
            assert isinstance(entry["count"], int)
            entry["count"] = entry["count"] + 1
    return result


def tracer_shape(tracer: Tracer) -> dict[str, object]:
    """The shape of a whole traced run."""
    return {
        "format": "repro.obs.golden",
        "version": 1,
        "span_count": tracer.span_count,
        "roots": _aggregate(tracer.roots),
    }


def trace_quick_scenario() -> Tracer:
    """Run the differential checker's quick scenario, serial, traced.

    Serial and uncached-across-runs by construction (a fresh model per
    call), so the resulting tree shape is a deterministic function of
    the code — exactly what a golden can pin."""
    from repro.analysis.differential import SCENARIOS, _run_cell

    with obs.capture(tracing=True, metrics=False) as cap:
        _run_cell(SCENARIOS["quick"], "serial", "base")
    return cap.tracer


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.goldens",
        description="check or regenerate the committed golden trace shape",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the golden instead of checking against it",
    )
    parser.add_argument(
        "--path",
        type=str,
        default=str(DEFAULT_GOLDEN),
        help=f"golden file location (default: {DEFAULT_GOLDEN})",
    )
    args = parser.parse_args(argv)

    shape = tracer_shape(trace_quick_scenario())
    path = Path(args.path)
    if args.update:
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(shape, indent=2, sort_keys=True) + "\n")
        print(f"wrote {path} ({shape['span_count']} spans)")
        return 0

    try:
        golden = json.loads(path.read_text())
    except OSError as exc:
        print(f"golden unreadable ({exc}); regenerate with --update")
        return 1
    if golden == shape:
        print(f"golden trace shape matches ({shape['span_count']} spans)")
        return 0
    print(
        "golden trace shape MISMATCH: "
        f"golden has {golden.get('span_count')} spans, "
        f"current run has {shape['span_count']}. "
        "If the structural change is intentional, regenerate with "
        "`python -m repro.obs.goldens --update`."
    )
    return 1


if __name__ == "__main__":
    sys.exit(main())
