"""Span-tree and metrics exporters.

Three trace formats, dispatched by file extension in
:func:`write_trace`:

- ``*.folded`` — flamegraph-folded lines (``root;child;leaf <us>``,
  value = *self* time in integer microseconds), ready for
  ``flamegraph.pl`` or speedscope;
- ``*.chrome.json`` — Chrome ``trace_event`` complete events, loadable
  in ``chrome://tracing`` / Perfetto;
- anything else — the native JSON span tree (names, attributes,
  timings, events, children).

All exports are pure functions of the tracer: they never mutate spans
and are safe to call while instrumentation is still enabled (after the
traced work finished).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.metrics import MetricsSnapshot
from repro.obs.tracing import Span, Tracer

__all__ = [
    "chrome_trace",
    "folded",
    "span_to_dict",
    "tracer_to_dict",
    "write_metrics",
    "write_trace",
]


def span_to_dict(span: Span) -> dict[str, object]:
    """The native JSON rendering of one span subtree."""
    return {
        "name": span.name,
        "attrs": {key: span.attrs[key] for key in sorted(span.attrs)},
        "start_wall": span.start_wall,
        "duration_seconds": span.duration,
        "cpu_seconds": span.cpu_seconds,
        "events": [
            {"kind": kind, "time": time, **dict(fields)}
            for kind, time, fields in span.events
        ],
        "dropped_events": span.dropped_events,
        "children": [span_to_dict(child) for child in span.children],
    }


def tracer_to_dict(tracer: Tracer) -> dict[str, object]:
    """The native JSON rendering of the whole span forest."""
    return {
        "format": "repro.obs.trace",
        "version": 1,
        "start_wall": tracer.start_wall,
        "span_count": tracer.span_count,
        "spans": [span_to_dict(root) for root in tracer.roots],
    }


def chrome_trace(tracer: Tracer) -> dict[str, object]:
    """Chrome ``trace_event`` rendering (complete ``"X"`` events)."""
    events: list[dict[str, object]] = []

    def emit(span: Span) -> None:
        events.append(
            {
                "name": span.name,
                "ph": "X",
                "ts": (span.start_perf - tracer.start_perf) * 1e6,
                "dur": span.duration * 1e6,
                "pid": 0,
                "tid": span.thread_id,
                "args": {key: span.attrs[key] for key in sorted(span.attrs)},
            }
        )
        for child in span.children:
            emit(child)

    for root in tracer.roots:
        emit(root)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def folded(tracer: Tracer) -> list[str]:
    """Flamegraph-folded lines; value = self time in microseconds.

    Identical stacks are aggregated and the output is sorted, so the
    rendering is deterministic for a given tree."""
    totals: dict[str, int] = {}

    def walk(span: Span, prefix: str) -> None:
        stack = f"{prefix};{span.name}" if prefix else span.name
        child_time = sum(child.duration for child in span.children)
        self_us = int(max(span.duration - child_time, 0.0) * 1e6)
        totals[stack] = totals.get(stack, 0) + self_us
        for child in span.children:
            walk(child, stack)

    for root in tracer.roots:
        walk(root, "")
    return [f"{stack} {value}" for stack, value in sorted(totals.items())]


def write_trace(tracer: Tracer, path: str | Path) -> Path:
    """Write the trace to ``path`` in the extension-selected format."""
    path = Path(path)
    if path.suffix == ".folded":
        path.write_text("\n".join(folded(tracer)) + "\n")
    elif path.name.endswith(".chrome.json"):
        # The chrome trace_event schema is fixed by the viewer; it has
        # no slot for our own format-version marker.
        path.write_text(json.dumps(chrome_trace(tracer), indent=2) + "\n")  # repro: noqa[RPR306] - externally-specified format
    else:
        path.write_text(
            json.dumps(tracer_to_dict(tracer), indent=2, sort_keys=True) + "\n"
        )
    return path


def write_metrics(snapshot: MetricsSnapshot, path: str | Path) -> Path:
    """Write a metrics snapshot to ``path`` as JSON."""
    path = Path(path)
    payload = {
        "format": "repro.obs.metrics",
        "version": 1,
        **snapshot.to_dict(),
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
