"""``repro.obs`` — zero-dependency observability: tracing, metrics, profiling.

The library's hot paths call five hooks — :func:`span`, :func:`inc`,
:func:`gauge`, :func:`observe`, :func:`add_event` — all guarded by ONE
module-level flag, ``_active``.  When instrumentation is disabled (the
default) every hook is a constant-time no-op: one global read, one
branch, no allocation (``span`` returns a shared :class:`NoopSpan`).
The overhead of the disabled path is priced by the ``obs_overhead``
microbenchmark and pinned below 2% by ``tests/obs/test_overhead.py``.

Determinism contract: instrumentation observes, it never participates.
Spans and counters do not enter cache fingerprints, do not touch any
float the models produce, and do not reorder work — the differential
checker's ``traced`` cell asserts a traced run is bit-identical to the
untraced reference.

Worker protocol: tracing is per-process (workers do not stream spans),
but metrics cross executor boundaries.  :func:`map_with_metrics` wraps
each task so it records into its own registry and returns
``(result, snapshot)``; snapshots are merged back through the
executor's *ordered* map, so merged counter totals equal a serial run's
exactly.  The process-pool bootstrap
(:func:`repro.runtime.executor._worker_bootstrap`) replays the metrics
switch into spawned workers, the same discipline as the sanitizer.

Typical usage::

    with obs.capture() as cap:
        run_workload()
    export.write_trace(cap.tracer, "run.chrome.json")
    export.write_metrics(cap.registry.snapshot(), "metrics.json")
"""

from __future__ import annotations

from collections.abc import Callable, Iterator, Sequence
from contextlib import contextmanager
from dataclasses import dataclass
from types import TracebackType
from typing import TYPE_CHECKING, TypeVar

import cProfile

from repro.obs import metrics as _metrics_mod
from repro.obs import profiling as _profiling_mod
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    MetricsSnapshot,
    MetricsTask,
    current_registry,
)
from repro.obs.tracing import NoopSpan, Span, Tracer, current_span

if TYPE_CHECKING:
    from repro.runtime.executor import Executor

__all__ = [
    "Capture",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NoopSpan",
    "Span",
    "Tracer",
    "add_event",
    "capture",
    "current_registry",
    "current_span",
    "gauge",
    "inc",
    "map_with_metrics",
    "metrics_active",
    "obs_disable",
    "obs_enable",
    "observe",
    "span",
    "suspended",
    "tracing_active",
]

T = TypeVar("T")
R = TypeVar("R")

#: THE master switch.  Every hook reads this first; False short-circuits
#: before any other state is touched, so the disabled path costs one
#: global load and one branch.
_active: bool = False

#: Sub-switches, only consulted when ``_active`` is already True.
_trace_on: bool = False
_metrics_on: bool = False

#: The tracer collecting spans while tracing is on.
_tracer: Tracer | None = None

#: The shared disabled-path span (stateless, so reuse is safe).
_NOOP = NoopSpan()


# --------------------------------------------------------------------- #
# the hot hooks
# --------------------------------------------------------------------- #


def span(name: str, **attrs: object) -> "Span | NoopSpan | _ProfiledSpan":
    """Open a traced region::

        with obs.span("perf.solve", sc=i) as sp:
            ...
            sp.set(iterations=n)

    Disabled: returns the shared no-op span."""
    if not _active or not _trace_on:
        return _NOOP
    tracer = _tracer
    if tracer is None:
        return _NOOP
    real = tracer.span(name, dict(attrs))
    profiler = _profiling_mod.maybe_start(name)
    if profiler is not None:
        return _ProfiledSpan(real, profiler)
    return real


def inc(name: str, value: int = 1) -> None:
    """Add ``value`` to the counter ``name`` (no-op when disabled)."""
    if not _active or not _metrics_on:
        return
    _metrics_mod.current_registry().inc(name, value)


def gauge(name: str, value: float) -> None:
    """Record a gauge (merge semantics: maximum; no-op when disabled)."""
    if not _active or not _metrics_on:
        return
    _metrics_mod.current_registry().gauge(name, value)


def observe(
    name: str,
    value: float,
    boundaries: tuple[float, ...] = DEFAULT_BUCKETS,
) -> None:
    """Record one histogram observation (no-op when disabled)."""
    if not _active or not _metrics_on:
        return
    _metrics_mod.current_registry().observe(name, value, boundaries)


def add_event(kind: str, time: float | None = None, **fields: object) -> None:
    """Attach a point event to the innermost open span, if any.

    This is how the simulator's :class:`~repro.sim.trace.TraceRecorder`
    events reach the span tree."""
    if not _active or not _trace_on:
        return
    open_span = current_span()
    if open_span is not None:
        open_span.event(kind, time, tuple(sorted(fields.items())))


class _ProfiledSpan:
    """A span wrapper that runs a cProfile over the spanned region."""

    __slots__ = ("_span", "_profiler")

    def __init__(  # repro: noqa[RPR104]
        self, span: Span, profiler: "cProfile.Profile"
    ) -> None:
        self._span = span
        self._profiler = profiler

    def __enter__(self) -> Span:
        return self._span.__enter__()

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: "TracebackType | None",
    ) -> None:
        self._span.attrs["profile"] = _profiling_mod.stop(self._profiler)
        self._span.__exit__(exc_type, exc, tb)


# --------------------------------------------------------------------- #
# switches
# --------------------------------------------------------------------- #


def tracing_active() -> bool:
    """Whether span hooks currently record."""
    return _active and _trace_on


def metrics_active() -> bool:
    """Whether metric hooks currently record."""
    return _active and _metrics_on


def active_tracer() -> Tracer | None:
    """The tracer spans currently land in (``None`` when tracing is off)."""
    return _tracer if tracing_active() else None


def obs_enable(tracing: bool = True, metrics: bool = True) -> None:
    """Turn instrumentation on for this process.

    A fresh :class:`Tracer` is installed when tracing is requested and
    none exists yet.  The process-pool worker bootstrap replays the
    *metrics* switch into spawned workers (tracing is per-process by
    design), which is exactly the mitigation RPR205 asks for.
    """
    global _active, _trace_on, _metrics_on, _tracer  # repro: noqa[RPR205]
    _trace_on = bool(tracing)
    _metrics_on = bool(metrics)
    if _trace_on and _tracer is None:
        _tracer = Tracer()
    _active = _trace_on or _metrics_on


def obs_disable() -> None:
    """Turn instrumentation off for this process (tracer kept)."""
    global _active, _trace_on, _metrics_on  # repro: noqa[RPR205]
    _active = False
    _trace_on = False
    _metrics_on = False


@dataclass(frozen=True)
class Capture:
    """The tracer and registry of one :func:`capture` block."""

    tracer: Tracer
    registry: MetricsRegistry

    def snapshot(self) -> MetricsSnapshot:
        """The captured metrics, frozen."""
        return self.registry.snapshot()


@contextmanager
def capture(
    tracing: bool = True,
    metrics: bool = True,
    max_span_events: int = 10_000,
) -> Iterator[Capture]:
    """Enable instrumentation with a fresh tracer/registry for one block.

    Previous switch state (including a surrounding capture) is restored
    on exit, so captures nest and tests never leak state.
    """
    global _active, _trace_on, _metrics_on, _tracer  # repro: noqa[RPR205]
    tracer = Tracer(max_span_events=max_span_events)
    registry = MetricsRegistry()
    saved = (_active, _trace_on, _metrics_on, _tracer)
    previous_registry = _metrics_mod.install_registry(registry)
    _tracer = tracer
    _trace_on = bool(tracing)
    _metrics_on = bool(metrics)
    _active = _trace_on or _metrics_on
    try:
        yield Capture(tracer=tracer, registry=registry)
    finally:
        _metrics_mod.install_registry(previous_registry)
        _active, _trace_on, _metrics_on, _tracer = saved


@contextmanager
def suspended() -> Iterator[None]:
    """Temporarily disable all instrumentation (restores on exit).

    The overhead benchmark uses this to price the disabled path while
    running inside an enabled capture."""
    global _active  # repro: noqa[RPR205]
    saved = _active
    _active = False
    try:
        yield
    finally:
        _active = saved


# --------------------------------------------------------------------- #
# the worker merge protocol
# --------------------------------------------------------------------- #


def map_with_metrics(
    executor: "Executor",
    fn: Callable[[T], R],
    items: Sequence[T],
) -> list[R]:
    """``executor.map`` that carries worker metrics back to the caller.

    With metrics off this is exactly ``executor.map(fn, items)``.  With
    metrics on, each task records into its own registry and the per-task
    snapshots are merged into the ambient registry *in input order* —
    the same ordered-map discipline that makes parallel results
    bit-identical to serial ones makes the merged totals exactly equal a
    serial run's totals, on thread and process backends alike.
    """
    items = list(items)
    if not metrics_active():
        return executor.map(fn, items)
    task = MetricsTask(fn)
    pairs = executor.map(task, items)
    registry = _metrics_mod.current_registry()
    results: list[R] = []
    for result, snapshot in pairs:
        registry.merge_snapshot(snapshot)
        results.append(result)
    return results
