"""Metrics registry: counters, gauges, and fixed-boundary histograms.

The registry is the write side; a :class:`MetricsSnapshot` is the read
side — a frozen, picklable, deterministically-ordered value that can be
merged with other snapshots.  Merging is the worker protocol: a task
shipped to a thread or process executor records into its own scoped
registry (:class:`MetricsTask`), returns ``(result, snapshot)``, and the
caller merges the snapshots back through the executor's *ordered* map,
so the merged totals equal a serial run's totals exactly.

Merge semantics, chosen so merge is associative and commutative:

- counters add;
- gauges take the maximum (high-water semantics — the only per-scalar
  reduction that is order-independent);
- histograms add bucket counts and totals, take min/max of extrema, and
  require identical bucket boundaries.

Counter totals and histogram bucket counts are integers, so merged
values are exact regardless of grouping; histogram ``sum`` is a float
and exact only for integer-valued observations (the property tests use
those).
"""

from __future__ import annotations

import bisect
import threading
from collections.abc import Iterable, Iterator
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any

from repro._validation import require

__all__ = [
    "DEFAULT_BUCKETS",
    "HistogramSnapshot",
    "MetricsRegistry",
    "MetricsSnapshot",
    "MetricsTask",
    "current_registry",
    "scoped_registry",
]

#: Default histogram bucket upper bounds (seconds-flavored; callers
#: measuring other units pass their own).  A value lands in the first
#: bucket whose bound is >= the value; larger values land in the
#: overflow bucket.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0001,
    0.0005,
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    10.0,
    60.0,
)


@dataclass(frozen=True)
class HistogramSnapshot:
    """Frozen state of one histogram.

    ``counts`` has one entry per boundary plus a final overflow bucket;
    ``minimum``/``maximum`` are ``+inf``/``-inf`` when the histogram is
    empty (the identities of min/max, so empty merges are neutral).
    """

    boundaries: tuple[float, ...]
    counts: tuple[int, ...]
    total: int
    sum: float
    minimum: float
    maximum: float

    def merge(self, other: "HistogramSnapshot") -> "HistogramSnapshot":
        """Combine two histograms of identical boundaries."""
        require(
            self.boundaries == other.boundaries,
            "cannot merge histograms with different bucket boundaries",
        )
        return HistogramSnapshot(
            boundaries=self.boundaries,
            counts=tuple(a + b for a, b in zip(self.counts, other.counts)),
            total=self.total + other.total,
            sum=self.sum + other.sum,
            minimum=min(self.minimum, other.minimum),
            maximum=max(self.maximum, other.maximum),
        )

    def to_dict(self) -> dict[str, object]:
        """JSON-friendly rendering (empty extrema become ``None``)."""
        return {
            "boundaries": list(self.boundaries),
            "counts": list(self.counts),
            "total": self.total,
            "sum": self.sum,
            "min": None if self.total == 0 else self.minimum,
            "max": None if self.total == 0 else self.maximum,
        }


@dataclass(frozen=True)
class MetricsSnapshot:
    """A frozen, picklable, mergeable view of one registry.

    Entries are sorted by name, so two snapshots with the same content
    compare (and pickle) identically regardless of recording order.
    """

    counters: tuple[tuple[str, int], ...]
    gauges: tuple[tuple[str, float], ...]
    histograms: tuple[tuple[str, HistogramSnapshot], ...]

    @classmethod
    def empty(cls) -> "MetricsSnapshot":
        """The merge identity."""
        return cls(counters=(), gauges=(), histograms=())

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """Combine two snapshots (associative and commutative)."""
        counters = dict(self.counters)
        for name, value in other.counters:
            counters[name] = counters.get(name, 0) + value
        gauges = dict(self.gauges)
        for name, gauge in other.gauges:
            gauges[name] = max(gauges.get(name, gauge), gauge)
        histograms = dict(self.histograms)
        for name, hist in other.histograms:
            mine = histograms.get(name)
            histograms[name] = hist if mine is None else mine.merge(hist)
        return MetricsSnapshot(
            counters=tuple(sorted(counters.items())),
            gauges=tuple(sorted(gauges.items())),
            histograms=tuple(sorted(histograms.items())),
        )

    @classmethod
    def merge_all(cls, snapshots: Iterable["MetricsSnapshot"]) -> "MetricsSnapshot":
        """Fold ``snapshots`` left-to-right onto the empty snapshot."""
        merged = cls.empty()
        for snapshot in snapshots:
            merged = merged.merge(snapshot)
        return merged

    def counter_view(self) -> dict[str, int]:
        """The integer-exact, backend-independent slice of the snapshot.

        This is what the differential checker compares across executor
        backends: counters (and histogram bucket counts, which are also
        integers) are exact under any merge grouping, whereas wall-clock
        histogram contents legitimately differ run to run."""
        view = {name: value for name, value in self.counters}
        for name, hist in self.histograms:
            view[f"{name}.count"] = hist.total
        return view

    def to_dict(self) -> dict[str, object]:
        """JSON-friendly rendering of the whole snapshot."""
        return {
            "counters": {name: value for name, value in self.counters},
            "gauges": {name: value for name, value in self.gauges},
            "histograms": {
                name: hist.to_dict() for name, hist in self.histograms
            },
        }


class _HistogramState:
    """Mutable accumulation state of one histogram (registry-internal)."""

    __slots__ = ("boundaries", "counts", "total", "sum", "minimum", "maximum")

    def __init__(self, boundaries: tuple[float, ...]) -> None:
        self.boundaries = boundaries
        self.counts = [0] * (len(boundaries) + 1)
        self.total = 0
        self.sum = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.boundaries, value)] += 1
        self.total += 1
        self.sum += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def snapshot(self) -> HistogramSnapshot:
        return HistogramSnapshot(
            boundaries=self.boundaries,
            counts=tuple(self.counts),
            total=self.total,
            sum=self.sum,
            minimum=self.minimum,
            maximum=self.maximum,
        )


class MetricsRegistry:
    """Thread-safe recording side of the metrics layer.

    All mutation happens under one internal lock; the hooks in
    :mod:`repro.obs` only reach a registry when instrumentation is
    enabled, so the lock is never taken on the disabled path.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}  # guarded-by: _lock
        self._gauges: dict[str, float] = {}  # guarded-by: _lock
        self._histograms: dict[str, _HistogramState] = {}  # guarded-by: _lock
        self._recordings = 0  # guarded-by: _lock

    def inc(self, name: str, value: int = 1) -> None:
        """Add ``value`` to the counter ``name``."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value
            self._recordings += 1

    def gauge(self, name: str, value: float) -> None:
        """Record the gauge ``name`` (merge semantics: maximum)."""
        with self._lock:
            current = self._gauges.get(name)
            self._gauges[name] = (
                value if current is None else max(current, value)
            )
            self._recordings += 1

    def observe(
        self,
        name: str,
        value: float,
        boundaries: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        """Record one observation into the histogram ``name``."""
        with self._lock:
            state = self._histograms.get(name)
            if state is None:
                state = _HistogramState(boundaries)
                self._histograms[name] = state
            else:
                require(
                    state.boundaries == boundaries,
                    f"histogram {name!r} already exists with different "
                    "bucket boundaries",
                )
            state.observe(value)
            self._recordings += 1

    def recordings(self) -> int:
        """Number of recording calls served (the hook-crossing count the
        overhead benchmark uses to price the disabled path)."""
        with self._lock:
            return self._recordings

    def snapshot(self) -> MetricsSnapshot:
        """A consistent frozen view (taken under the lock)."""
        with self._lock:
            return MetricsSnapshot(
                counters=tuple(sorted(self._counters.items())),
                gauges=tuple(sorted(self._gauges.items())),
                histograms=tuple(
                    sorted(
                        (name, state.snapshot())
                        for name, state in self._histograms.items()
                    )
                ),
            )

    def merge_snapshot(self, snapshot: MetricsSnapshot) -> None:
        """Fold a worker's snapshot into this registry.

        Counter totals and histogram counts end up exactly equal to a
        serial run that had recorded the same events directly."""
        with self._lock:
            for name, value in snapshot.counters:
                self._counters[name] = self._counters.get(name, 0) + value
            for name, gauge in snapshot.gauges:
                current = self._gauges.get(name)
                self._gauges[name] = (
                    gauge if current is None else max(current, gauge)
                )
            for name, hist in snapshot.histograms:
                state = self._histograms.get(name)
                if state is None:
                    state = _HistogramState(hist.boundaries)
                    self._histograms[name] = state
                require(
                    state.boundaries == hist.boundaries,
                    f"histogram {name!r} merge with different boundaries",
                )
                for i, count in enumerate(hist.counts):
                    state.counts[i] += count
                state.total += hist.total
                state.sum += hist.sum
                state.minimum = min(state.minimum, hist.minimum)
                state.maximum = max(state.maximum, hist.maximum)

    # -- pickling: ship configuration, not contents -------------------- #
    #
    # Registries hold a lock and live accumulation state; what crosses
    # process boundaries is the *snapshot*.  A pickled registry arrives
    # empty (same contract as LRUCache).

    def __getstate__(self) -> dict[str, Any]:
        return {}

    def __setstate__(self, state: dict[str, Any]) -> None:
        self._lock = threading.Lock()
        self._counters = {}
        self._gauges = {}
        self._histograms = {}
        self._recordings = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        with self._lock:
            return (
                f"MetricsRegistry(counters={len(self._counters)}, "
                f"gauges={len(self._gauges)}, "
                f"histograms={len(self._histograms)})"
            )


# --------------------------------------------------------------------- #
# ambient registry: one installed default, thread-local scoping
# --------------------------------------------------------------------- #

_installed: MetricsRegistry = MetricsRegistry()

_scope_local = threading.local()


def _scope_stack() -> list[MetricsRegistry]:
    stack: list[MetricsRegistry] | None = getattr(_scope_local, "stack", None)
    if stack is None:
        stack = []
        _scope_local.stack = stack
    return stack


def current_registry() -> MetricsRegistry:
    """The registry hooks record into: the innermost scoped registry on
    this thread, else the installed default."""
    stack = _scope_stack()
    return stack[-1] if stack else _installed


def install_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the installed default registry; returns the previous one.

    Used by :func:`repro.obs.capture` (single-writer: the driver thread
    swaps around a with-block; worker processes never call this — the
    executor bootstrap gives them their own fresh module state).
    """
    global _installed  # repro: noqa[RPR205]
    previous = _installed
    _installed = registry
    return previous


@contextmanager
def scoped_registry(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Route this thread's recordings to ``registry`` inside the block."""
    stack = _scope_stack()
    stack.append(registry)
    try:
        yield registry
    finally:
        stack.pop()


class MetricsTask:
    """Picklable task wrapper implementing the worker merge protocol.

    Wraps ``fn`` so each item runs under a fresh scoped registry and
    returns ``(result, snapshot)``; the caller (usually
    :func:`repro.obs.map_with_metrics`) merges the snapshots back in
    input order.  ``fn`` must itself be picklable for process pools —
    the same constraint the executor already imposes.
    """

    def __init__(self, fn: Any) -> None:
        require(callable(fn), "MetricsTask wraps a callable")
        self.fn = fn

    def __call__(self, item: Any) -> tuple[Any, MetricsSnapshot]:
        registry = MetricsRegistry()
        with scoped_registry(registry):
            result = self.fn(item)
        return result, registry.snapshot()
