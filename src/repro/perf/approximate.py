"""The hierarchical approximate performance model ``M^1 .. M^K`` (Sect. III-C).

Each level ``M^i`` is a CTMC over ``(q_i, s_i, o_i, a_i)``:

- ``q_i`` — requests of SC i queued or in service at SC i,
- ``s_i`` — SC i's VMs serving the group ``{1..i-1}``,
- ``o_i`` — VMs SC i borrows from the shared pool,
- ``a_i`` — shared VMs (not SC i's) held by the group.

``M^1`` is solved directly (the first SC sees an uncontended pool).  Every
later level refreshes ``(s, a)`` at each event from the *interaction
outcome distributions* of the previous level (see
:mod:`repro.perf.interaction`): the group's allocation after the mean
inter-event period, conditioned on the current allocation, split between
the target's pool and the rest.  Transition cases C1–C5 follow the paper;
the group-backlog flag needed by C4/C5 is carried in the outcomes.

The chain is linear in K — evaluating the target SC builds K chains whose
individual sizes do not depend on K (only on the pool size ``B_i``).
Evaluating *all* SCs rotates each one into the target slot (the paper's
decentralized usage: each SC runs the chain with itself last).

Two layers make repeated evaluation cheap — the paper's market game calls
this model hundreds of times per equilibrium search:

- **Vectorized transition assembly.**  The generator of one level is
  emitted in NumPy batches grouped by ``(event type, interaction level
  s + a, outcome)`` instead of a per-state Python loop; the batches are
  then permuted back into the exact order the per-state loop would have
  produced, so the assembled sparse generator is *bit-identical* to the
  retained reference implementation (``assembly="reference"``), which the
  test suite asserts.
- **Level-prefix memoization.**  A solved level depends only on the model
  configuration, the ordered prefix of per-SC performance specs
  ``(N, lambda, mu, Q, S)``, and its pool size ``B_i``; an in-memory LRU
  (:class:`repro.runtime.memo.LRUCache`) keyed on exactly that content
  lets target rotations and repeated scenario sweeps rebuild only the
  levels whose prefix actually changed.  Cache hits return the very
  arrays a cold build would produce, so memoized runs stay bit-identical.
  ``warm_start=True`` additionally seeds each level's steady-state solve
  with the stationary vector of the most recent same-shape chain — the
  iterative solvers then converge in far fewer sweeps (the direct solver
  ignores the hint).  Warm starting is opt-in because it can perturb
  results at the solver-tolerance level (~1e-12) on chains large enough
  to use the iterative solvers.
"""

from __future__ import annotations

import threading
from array import array
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

import numpy as np
import scipy.sparse as sp

if TYPE_CHECKING:
    from repro.runtime.executor import Executor

from repro import obs
from repro._validation import check_positive, require
from repro.core.small_cloud import FederationScenario, SmallCloud
from repro.markov.ctmc import CTMC
from repro.markov.solvers import steady_state
from repro.markov.state_space import StateSpace
from repro.perf.base import PerformanceModel
from repro.perf.interaction import (
    conditional_initials,
    reduction_matrix,
    transient_outcomes,
)
from repro.perf.params import PerformanceParams
from repro.queueing.forwarding import queue_truncation_level
from repro.queueing.sla import prob_no_forward
from repro.runtime.memo import LRUCache

def _evaluate_target_task(
    task: "tuple[ApproximateModel, FederationScenario, int]",
) -> PerformanceParams:
    """Process-pool-friendly wrapper around one target rotation."""
    model, scenario, target = task
    return model.evaluate_target(scenario, target=target)


#: Capacity floor of the ``level_cache_size="auto"`` policy; also the
#: legacy fixed default, so small federations behave exactly as before.
_AUTO_CACHE_FLOOR = 64

#: How many recently built chains the incremental mode retains for
#: longest-common-prefix reuse.  Each retained chain pins K solved
#: levels, so this stays small; the level-prefix LRU is the bulk tier.
_CHAIN_STATE_DEPTH = 8


class _StateIndexer:
    """Closed-form index of a ``(q, s, o, a)`` state in enumeration order.

    The level state spaces enumerate ``q``, then ``s``, then the
    triangular ``(o, a)`` block with ``o + a <= pool``; this mirrors that
    enumeration arithmetically so transition assembly avoids per-lookup
    dict hashing of tuples.  All per-instance quantities (including the
    total ``(o, a)`` pair count ``per_s``) are precomputed once — this
    sits on the hottest loop in the repo.
    """

    __slots__ = ("shares", "pool", "_tri_base", "_tri_np", "_per_s", "_block")

    def __init__(self, q_max: int, shares: int, pool: int) -> None:
        self.shares = shares
        self.pool = pool
        # _tri_base[o] = first index of row o inside the (o, a) triangle.
        self._tri_base = [0] * (pool + 1)
        offset = 0
        for o in range(pool + 1):
            self._tri_base[o] = offset
            offset += pool - o + 1
        self._per_s = offset  # total (o, a) pairs
        self._block = (shares + 1) * offset  # states per q level
        self._tri_np = np.asarray(self._tri_base, dtype=np.int64)

    def __call__(self, q: int, s: int, o: int, a: int) -> int:
        return q * self._block + s * self._per_s + self._tri_base[o] + a

    def index_arrays(
        self,
        q: "np.ndarray | int",
        s: "np.ndarray | int",
        o: "np.ndarray | int",
        a: "np.ndarray | int",
    ) -> np.ndarray:
        """Vectorized :meth:`__call__` over (broadcastable) index arrays."""
        return q * self._block + s * self._per_s + self._tri_np[o] + a


def _state_arrays(
    q_max: int, shares: int, pool: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """The ``(q, s, o, a)`` coordinates of every level state, enumeration
    order, as four int64 arrays (the vectorized twin of the state list)."""
    o_row = np.repeat(
        np.arange(pool + 1, dtype=np.int64),
        np.arange(pool + 1, 0, -1, dtype=np.int64),
    )
    a_row = np.concatenate(
        [np.arange(pool - o + 1, dtype=np.int64) for o in range(pool + 1)]
    )
    tri = o_row.size
    blocks = (q_max + 1) * (shares + 1)
    q_arr = np.repeat(np.arange(q_max + 1, dtype=np.int64), (shares + 1) * tri)
    s_arr = np.tile(np.repeat(np.arange(shares + 1, dtype=np.int64), tri), q_max + 1)
    o_arr = np.tile(o_row, blocks)
    a_arr = np.tile(a_row, blocks)
    return q_arr, s_arr, o_arr, a_arr


class _EntrySink:
    """Accumulates generator entries with their reference emission keys.

    The vectorized assembler emits entries grouped by ``(event, level,
    outcome)``; the reference loop emits them grouped by state.  Each
    entry's key ``(row, event, outcome position)`` is unique, so sorting
    by it reproduces the reference order exactly — and therefore the
    exact floating-point duplicate-summation order inside
    ``coo_matrix(...).tocsr()``.
    """

    __slots__ = ("_rows", "_cols", "_vals", "_keys", "_omax")

    def __init__(self, max_outcomes: int) -> None:
        self._rows: list[np.ndarray] = []
        self._cols: list[np.ndarray] = []
        self._vals: list[np.ndarray] = []
        self._keys: list[np.ndarray] = []
        self._omax = np.int64(max(max_outcomes, 1))

    def emit(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        val: np.ndarray,
        event: int,
        outcome_pos: int,
    ) -> None:
        """Queue a batch of entries; self-loops are dropped (the diagonal
        is derived from row sums afterwards, as in the reference)."""
        val = np.broadcast_to(val, src.shape)
        keep = dst != src
        if not keep.all():
            src, dst, val = src[keep], dst[keep], val[keep]
        if src.size == 0:
            return
        self._rows.append(src)
        self._cols.append(dst)
        self._vals.append(val)
        self._keys.append((src * 3 + np.int64(event)) * self._omax + np.int64(outcome_pos))

    def sorted_entries(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All entries permuted into reference (state-major) order."""
        if not self._rows:
            empty = np.empty(0)
            return empty.astype(np.int32), empty.astype(np.int32), empty
        rows = np.concatenate(self._rows)
        cols = np.concatenate(self._cols)
        vals = np.concatenate(self._vals)
        perm = np.argsort(np.concatenate(self._keys), kind="stable")
        return rows[perm].astype(np.int32), cols[perm].astype(np.int32), vals[perm]


@dataclass
class _Level:
    """One solved chain of the hierarchy plus the arrays the next level needs."""

    space: StateSpace
    steady: np.ndarray
    ctmc: CTMC
    usage: np.ndarray  # U = o + a (non-own shared VMs used by the group+self)
    own_lent: np.ndarray  # s (this SC's VMs lent to the group)
    backlog: np.ndarray  # queued requests of this SC
    totals: np.ndarray  # T = s + o + a (total group {1..i} shared usage)
    pool_size: int  # B_i
    forward_flow: np.ndarray  # per-state public-cloud forwarding rate
    cloud: SmallCloud


class ApproximateModel(PerformanceModel):
    """Hierarchical approximate model (Sect. III-C).

    Args:
        tail_epsilon: queue truncation tolerance.
        transient_epsilon: Fox–Glynn truncation mass for the interaction
            transients.
        outcome_threshold: interaction outcomes with probability below
            this are dropped (and the rest renormalized) to bound the
            transition fan-out.
        max_outcomes: hard cap on the retained outcomes per interaction
            distribution (highest-probability outcomes win).  The cap
            bounds the generator at ``3 * max_outcomes`` transitions per
            state, which keeps the largest paper scenarios (10-SC pools,
            full sharing) within laptop memory; the discarded mass is
            below 1% in all benchmarked settings.
        executor: optional :class:`repro.runtime.executor.Executor` used
            by :meth:`evaluate` to rotate the K independent per-target
            chains in parallel.  Each rotation is a pure function of the
            scenario, so any executor (including process pools) returns
            results bit-identical to a serial run.
        assembly: ``"vectorized"`` (default) or ``"reference"`` — the
            retained per-state Python loop.  Both produce bit-identical
            generators; the reference exists as the equality oracle and
            is orders of magnitude slower.
        level_cache_size: capacity of the level-prefix LRU (``None`` for
            unbounded, ``0`` to disable memoization entirely).  The
            default ``"auto"`` starts at the legacy capacity of 64 and
            grows monotonically with the largest federation evaluated
            (``6 K + 16``) — a fixed capacity that is generous at
            ``K=10`` thrashes at ``K=50``, where one chain already needs
            ``K`` live entries and a Tabu neighborhood several chains'
            worth.  Cached levels are exactly the objects a cold build
            produces, so capacity never changes results, only wall-clock.
        warm_start: seed each level's steady-state solve with the most
            recently solved same-shape chain's stationary vector.  Off by
            default: the hint is only consumed by the iterative solvers,
            where it can move results at their convergence tolerance
            (~1e-12) and makes them dependent on evaluation order.
        mode: evaluation strategy — results are bit-identical across all
            three, which the differential K-sweep asserts per commit.

            - ``"monolithic"`` (default): the historical path; every
              query walks its chain front-to-back through the LRU.
            - ``"sharded"``: :meth:`evaluate` partitions the per-SC level
              builds of one *generation* (level index) across the
              executor's workers, deduplicating rotations that share a
              prefix, and exchanges the solved levels between generations
              through the ordered-map interface
              (:mod:`repro.perf.sharding`).
            - ``"incremental"``: single-target queries
              (:meth:`evaluate_target`, the best-response objective)
              diff their chain's content keys against recently built
              chains and rebuild only the suffix whose keys changed,
              reusing the untouched prefix levels verbatim.  A deviation
              in rates or SLA at position ``p`` rebuilds exactly the
              levels at and after ``p``; a sharing deviation that moves
              the federation total ``sum(S)`` changes every level's pool
              and therefore honestly rebuilds from the front (same-total
              deviations — the bulk of a Tabu neighborhood scored across
              SCs — share prefixes).
    """

    def __init__(
        self,
        tail_epsilon: float = 1e-9,
        transient_epsilon: float = 1e-8,
        outcome_threshold: float = 1e-7,
        max_outcomes: int = 48,
        executor: "Executor | None" = None,
        assembly: str = "vectorized",
        level_cache_size: int | str | None = "auto",
        warm_start: bool = False,
        mode: str = "monolithic",
    ) -> None:
        self.tail_epsilon = check_positive(tail_epsilon, "tail_epsilon")  # fingerprint-input: _config_key
        self.transient_epsilon = check_positive(transient_epsilon, "transient_epsilon")  # fingerprint-input: _config_key
        self.outcome_threshold = check_positive(outcome_threshold, "outcome_threshold")  # fingerprint-input: _config_key
        self.max_outcomes = int(max_outcomes)  # fingerprint-input: _config_key
        self.executor = executor
        require(
            assembly in ("vectorized", "reference"),
            f"assembly must be 'vectorized' or 'reference', got {assembly!r}",
        )
        auto_cache = isinstance(level_cache_size, str)
        require(
            (not auto_cache and (level_cache_size is None or int(level_cache_size) >= 0))  # type: ignore[arg-type]
            or level_cache_size == "auto",
            "level_cache_size must be 'auto', None, or a non-negative integer",
        )
        require(
            mode in ("monolithic", "sharded", "incremental"),
            f"mode must be 'monolithic', 'sharded', or 'incremental', got {mode!r}",
        )
        self.warm_start = bool(warm_start)
        # Private plumbing (underscored so it stays out of the cache
        # fingerprint: assemblers, cache sizes, and evaluation modes all
        # produce bit-identical parameters).
        self._assembly = assembly
        self._mode = mode
        self._level_cache_size = level_cache_size
        resolved = _AUTO_CACHE_FLOOR if auto_cache else level_cache_size
        self._auto_cache = auto_cache
        self._level_cache: LRUCache | None = (
            LRUCache(maxsize=resolved, name="perf.level_cache")  # type: ignore[arg-type]
            if resolved != 0
            else None
        )
        self._warm: LRUCache = LRUCache(maxsize=16)
        # Incremental chain state: most-recent-first list of
        # (keys, levels) pairs for longest-common-prefix reuse.
        self._chains: list[tuple[list[tuple], list[_Level]]] = []  # guarded-by: _state_lock
        self._incremental_counts = {  # guarded-by: _state_lock
            "levels_reused": 0,
            "levels_rebuilt": 0,
            "chain_prefix_hits": 0,
        }
        self._state_lock = threading.Lock()

    @property
    def mode(self) -> str:
        """The evaluation strategy this instance was configured with."""
        return self._mode

    # -- pickling: executors ship worker copies into process pools ------ #
    #
    # A live lock is unpicklable and another process's chain state is
    # useless, so workers start with fresh incremental state (the same
    # cold-start rule the level-prefix LRU applies to itself).

    def __getstate__(self) -> dict[str, object]:
        state = dict(self.__dict__)
        del state["_state_lock"]
        state["_chains"] = []
        state["_incremental_counts"] = dict.fromkeys(self._incremental_counts, 0)
        return state

    def __setstate__(self, state: dict[str, object]) -> None:
        self.__dict__.update(state)
        self._state_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # public interface
    # ------------------------------------------------------------------ #

    def evaluate_target(
        self,
        scenario: FederationScenario,
        target: int | None = None,
        deviation: int | None = None,
    ) -> PerformanceParams:
        """Evaluate one SC accurately by running the chain with it last.

        Args:
            scenario: the federation (sharing vector included).
            target: index of the SC of interest; defaults to the last.
            deviation: optional index of the single SC whose decision
                changed since the caller's previous query (the game layer
                plumbs it through best-response scans).  Purely
                observational — reuse is decided by content-key diffing,
                never by trusting the hint — but it lets the metrics
                attribute incremental effectiveness to deviation scans.
        """
        if target is not None and target != len(scenario) - 1:
            scenario = scenario.rotated_to_target(target)
        if deviation is not None:
            obs.inc("perf.incremental.deviation_query")
        with obs.span(
            "perf.solve", k=len(scenario), target=len(scenario) - 1
        ):
            level = self._build_chain(scenario)
            return self._params_from_level(level)

    def evaluate(self, scenario: FederationScenario) -> list[PerformanceParams]:
        """Evaluate every SC by rotating each into the target slot.

        The K rotations are independent chains; with an executor they run
        in parallel (process pools ship a copy of the model configured
        without an executor, so workers never nest pools).  The serial
        path shares the level-prefix cache across rotations: rotation
        ``t`` reuses the first ``t`` levels of the deepest chain built so
        far instead of resolving them.

        In ``mode="sharded"`` the parallel unit is one *level build*
        rather than one rotation: each generation's distinct levels are
        deduplicated across rotations and partitioned over the workers,
        so the parallel path does the same total work as the memoized
        serial walk (about ``K^2/2`` builds) instead of ``K^2`` cold
        builds — see :mod:`repro.perf.sharding`.
        """
        k = len(scenario)
        executor = self.executor
        if (
            self._mode == "sharded"
            and executor is not None
            and executor.workers > 1
            and k > 1
        ):
            from repro.perf.sharding import evaluate_sharded

            with obs.span("perf.evaluate", k=k, backend="sharded"):
                return evaluate_sharded(self, scenario, executor)
        if executor is None or executor.workers <= 1 or k == 1:
            with obs.span("perf.evaluate", k=k, backend="inline"):
                return [self.evaluate_target(scenario, target=i) for i in range(k)]
        worker = self._worker_clone()
        with obs.span("perf.evaluate", k=k, backend="executor"):
            return obs.map_with_metrics(
                executor,
                _evaluate_target_task,
                [(worker, scenario, i) for i in range(k)],
            )

    def _worker_clone(self) -> "ApproximateModel":
        """A copy with identical solve configuration but no executor (so
        workers never nest pools) and default monolithic mode."""
        return ApproximateModel(
            tail_epsilon=self.tail_epsilon,
            transient_epsilon=self.transient_epsilon,
            outcome_threshold=self.outcome_threshold,
            max_outcomes=self.max_outcomes,
            assembly=self._assembly,
            level_cache_size=self._level_cache_size,
            warm_start=self.warm_start,
        )

    def level_cache_stats(self) -> dict[str, int | None]:
        """Hit/miss counters of the level-prefix cache (all zero when
        memoization is disabled)."""
        if self._level_cache is None:
            return {
                "size": 0,
                "maxsize": 0,
                "hits": 0,
                "misses": 0,
                "duplicate_builds": 0,
            }
        return self._level_cache.stats()

    # ------------------------------------------------------------------ #
    # chain construction and level memoization
    # ------------------------------------------------------------------ #

    def _config_key(self) -> tuple:
        return (
            self.tail_epsilon,
            self.transient_epsilon,
            self.outcome_threshold,
            self.max_outcomes,
        )

    @staticmethod
    def _spec_key(cloud: SmallCloud) -> tuple:
        """The performance-relevant content of one SC (prices and names
        cannot influence a chain, so they are excluded — the same rule
        the disk cache applies)."""
        return (
            cloud.vms,
            cloud.arrival_rate,
            cloud.service_rate,
            cloud.sla_bound,
            cloud.shared_vms,
        )

    def _chain_keys(self, scenario: FederationScenario) -> list[tuple]:
        """The content keys of levels ``M^1 .. M^K`` for ``scenario``.

        The key of level ``i`` is ``(config, spec_1..spec_i, B_i)``: the
        ordered prefix of SC specs plus the level's pool size.  All
        earlier pools are derivable from that content (``B_{j} = B_i +
        S_i - S_j``), so equal keys imply bit-identical levels.  This is
        the shared plan the monolithic walk, the incremental key diff,
        and the sharded generation schedule all consume.
        """
        keys: list[tuple] = []
        prefix: tuple = (self._config_key(),)
        for i in range(len(scenario)):
            prefix = prefix + (self._spec_key(scenario[i]),)
            keys.append((prefix, scenario.shared_by_others(i)))
        return keys

    def _ensure_auto_capacity(self, k: int) -> None:
        """Grow an ``"auto"``-sized level cache to fit federations of
        ``k`` SCs (one chain is ``k`` entries; a Tabu neighborhood scored
        across same-total deviations touches several chains' worth)."""
        if self._auto_cache and self._level_cache is not None:
            self._level_cache.ensure_capacity(max(_AUTO_CACHE_FLOOR, 6 * k + 16))

    def _build_chain(self, scenario: FederationScenario) -> _Level:
        """Build (or recall) levels ``M^1 .. M^K`` for ``scenario``.

        Walking the chain front-to-back, only the suffix below the
        deepest cached prefix is rebuilt.  ``mode="incremental"``
        additionally diffs the plan against recently built chains and
        reuses the longest common key prefix verbatim, without touching
        the LRU at all for those levels.
        """
        keys = self._chain_keys(scenario)
        self._ensure_auto_capacity(len(keys))
        if self._mode == "incremental":
            return self._build_chain_incremental(scenario, keys)
        cache = self._level_cache
        level: _Level | None = None
        for i, key in enumerate(keys):
            cached = cache.get(key) if cache is not None else None
            if cached is None:
                with obs.span("perf.level_build", level=i):
                    if i == 0:
                        cached = self._build_first(scenario)
                    else:
                        assert level is not None
                        cached = self._build_level(scenario, i, level)
                if cache is not None:
                    cache.put(key, cached)
            level = cached
        assert level is not None
        return level

    def _build_chain_incremental(
        self, scenario: FederationScenario, keys: list[tuple]
    ) -> _Level:
        """Rebuild only the suffix whose content keys changed.

        Reuse is decided purely by key equality against the retained
        recent chains, so it is exactly as sound as the LRU: a reused
        level is the very object an identical cold build would have
        produced.  A single-SC deviation at chain position ``p`` that
        leaves the federation total unchanged (rate/SLA drift, or a
        compensated share move) keeps keys ``0..p-1`` equal and
        therefore rebuilds nothing before ``p`` — the property the
        incremental test suite asserts.
        """
        prefix_levels = self._chain_prefix(keys)
        g = len(prefix_levels)
        levels: list[_Level] = list(prefix_levels)
        level: _Level | None = levels[-1] if levels else None
        cache = self._level_cache
        cache_hits = 0
        rebuilt = 0
        for i in range(g, len(keys)):
            cached = cache.get(keys[i]) if cache is not None else None
            if cached is None:
                with obs.span("perf.level_build", level=i):
                    if i == 0:
                        cached = self._build_first(scenario)
                    else:
                        assert level is not None
                        cached = self._build_level(scenario, i, level)
                if cache is not None:
                    cache.put(keys[i], cached)
                rebuilt += 1
            else:
                cache_hits += 1
            levels.append(cached)
            level = cached
        self._remember_chain(keys, levels, prefix=g, cache_hits=cache_hits, rebuilt=rebuilt)
        assert level is not None
        return level

    def _chain_prefix(self, keys: list[tuple]) -> list[_Level]:
        """The longest key-equal level prefix among the retained chains."""
        with self._state_lock:
            best: list[_Level] = []
            for held_keys, held_levels in self._chains:
                g = 0
                for a, b in zip(keys, held_keys):
                    if a != b:
                        break
                    g += 1
                if g > len(best):
                    best = held_levels[:g]
            return best

    def _remember_chain(
        self,
        keys: list[tuple],
        levels: list[_Level],
        prefix: int,
        cache_hits: int,
        rebuilt: int,
    ) -> None:
        """Retain the finished chain (most recent first) and account for
        how much of it was reused rather than rebuilt."""
        reused = prefix + cache_hits
        with self._state_lock:
            self._chains = [
                entry for entry in self._chains if entry[0] != keys
            ]
            self._chains.insert(0, (keys, levels))
            del self._chains[_CHAIN_STATE_DEPTH:]
            counts = self._incremental_counts
            counts["levels_reused"] += reused
            counts["levels_rebuilt"] += rebuilt
            counts["chain_prefix_hits"] += prefix
        if reused:
            obs.inc("perf.incremental.level_reused", reused)
        if rebuilt:
            obs.inc("perf.incremental.level_rebuilt", rebuilt)

    def incremental_stats(self) -> dict[str, int]:
        """Effectiveness counters of the incremental re-solve tier
        (all zero outside ``mode="incremental"``)."""
        with self._state_lock:
            return dict(self._incremental_counts)

    def _q_max(self, scenario: FederationScenario, index: int) -> int:
        cloud = scenario[index]
        capacity = cloud.vms + scenario.shared_by_others(index)
        return queue_truncation_level(
            capacity, cloud.service_rate, cloud.sla_bound, self.tail_epsilon
        )

    def _solve_steady(self, ctmc: CTMC, shape_key: tuple) -> np.ndarray:
        """Steady-state solve, optionally warm-started from the last
        solved chain of identical shape."""
        x0 = self._warm.get(shape_key) if self.warm_start else None
        if self.warm_start:
            obs.inc("perf.warm_replay.hit" if x0 is not None else "perf.warm_replay.miss")
        pi = steady_state(ctmc.generator, x0=x0)
        if self.warm_start:
            self._warm.put(shape_key, pi)
        return pi

    # ------------------------------------------------------------------ #
    # level 1
    # ------------------------------------------------------------------ #

    # hot-path: level-1 CTMC assembly
    def _build_first(self, scenario: FederationScenario) -> _Level:
        """``M^1``: the first SC has uncontended access to the pool."""
        cloud = scenario[0]
        pool = scenario.shared_by_others(0)
        q_max = self._q_max(scenario, 0)
        n = cloud.vms
        mu = cloud.service_rate
        lam = cloud.arrival_rate
        states = [(q, 0, o, 0) for q in range(q_max + 1) for o in range(pool + 1)]
        space = StateSpace(states)
        if self._assembly == "reference":
            rows, cols, vals, forward = self._assemble_first_reference(
                n, mu, lam, pool, q_max, cloud.sla_bound
            )
        else:
            rows, cols, vals, forward = self._assemble_first_vectorized(
                n, mu, lam, pool, q_max, cloud.sla_bound
            )
        ctmc = CTMC(space, self._generator(len(space), rows, cols, vals))
        pi = self._solve_steady(ctmc, ("first", q_max, pool))
        q_arr = np.repeat(np.arange(q_max + 1, dtype=np.int64), pool + 1)
        o_arr = np.tile(np.arange(pool + 1, dtype=np.int64), q_max + 1)
        return _Level(
            space=space,
            steady=pi,
            ctmc=ctmc,
            usage=o_arr,
            own_lent=np.zeros(len(space), dtype=int),
            backlog=np.maximum(q_arr - n, 0),
            totals=o_arr,
            pool_size=pool,
            forward_flow=forward,
            cloud=cloud,
        )

    def _assemble_first_reference(
        self, n: int, mu: float, lam: float, pool: int, q_max: int, sla: float
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Per-state loop for ``M^1`` — the equality oracle."""
        n_states = (q_max + 1) * (pool + 1)
        rows = array("i")
        cols = array("i")
        vals = array("d")
        forward = np.zeros(n_states)

        def add(src: int, dst: int, rate: float) -> None:
            rows.append(src)
            cols.append(dst)
            vals.append(rate)

        width = pool + 1
        for idx in range(n_states):
            q, o = divmod(idx, width)
            if q < n:
                add(idx, idx + width, lam)
            elif o < pool:
                add(idx, idx + 1, lam)
            else:
                p_queue = prob_no_forward(q - n, n + o, mu, sla)
                if q + 1 <= q_max and p_queue > 0.0:
                    add(idx, idx + width, lam * p_queue)
                    forward[idx] = lam * (1.0 - p_queue)
                else:
                    forward[idx] = lam
            running = min(q, n)
            if running > 0:
                add(idx, idx - width, running * mu)
            if o > 0:
                add(idx, idx - 1, o * mu)
        return (
            np.frombuffer(rows, dtype=np.int32),
            np.frombuffer(cols, dtype=np.int32),
            np.frombuffer(vals, dtype=float),
            forward,
        )

    def _assemble_first_vectorized(
        self, n: int, mu: float, lam: float, pool: int, q_max: int, sla: float
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Batch assembly of ``M^1`` (bit-identical to the reference)."""
        width = pool + 1
        n_states = (q_max + 1) * width
        q_arr = np.repeat(np.arange(q_max + 1, dtype=np.int64), width)
        o_arr = np.tile(np.arange(width, dtype=np.int64), q_max + 1)
        idx = np.arange(n_states, dtype=np.int64)
        forward = np.zeros(n_states)
        sink = _EntrySink(max_outcomes=1)

        # Arrivals (slot 0): free own VM / free pool VM / SLA race.
        m1 = q_arr < n
        sink.emit(idx[m1], idx[m1] + width, np.array([lam]), 0, 0)
        m2 = ~m1 & (o_arr < pool)
        sink.emit(idx[m2], idx[m2] + 1, np.array([lam]), 0, 0)
        m3 = ~m1 & ~m2
        if m3.any():
            # m3 non-empty implies q_max >= n (it needs q >= n, o == pool).
            q3 = q_arr[m3]
            pq_table = np.array(
                [prob_no_forward(w, n + pool, mu, sla) for w in range(q_max - n + 1)]
            )
            p_queue = pq_table[q3 - n]
            queue_ok = (q3 + 1 <= q_max) & (p_queue > 0.0)
            st3 = idx[m3]
            sink.emit(
                st3[queue_ok], st3[queue_ok] + width, lam * p_queue[queue_ok], 0, 0
            )
            forward[st3[queue_ok]] = lam * (1.0 - p_queue[queue_ok])
            forward[st3[~queue_ok]] = lam
        # Local departures (slot 1) and pool departures (slot 2).
        running = np.minimum(q_arr, n)
        m4 = running > 0
        sink.emit(idx[m4], idx[m4] - width, running[m4] * mu, 1, 0)
        m5 = o_arr > 0
        sink.emit(idx[m5], idx[m5] - 1, o_arr[m5] * mu, 2, 0)
        rows, cols, vals = sink.sorted_entries()
        return rows, cols, vals, forward

    # ------------------------------------------------------------------ #
    # levels 2..K
    # ------------------------------------------------------------------ #

    # hot-path: per-level CTMC assembly; the model's dominant cost at K>2
    def _build_level(
        self, scenario: FederationScenario, index: int, prev: _Level
    ) -> _Level:
        cloud = scenario[index]
        n = cloud.vms
        mu = cloud.service_rate
        lam = cloud.arrival_rate
        shares = cloud.shared_vms
        pool = scenario.shared_by_others(index)
        q_max = self._q_max(scenario, index)

        states = [
            (q, s, o, a)
            for q in range(q_max + 1)
            for s in range(shares + 1)
            for o in range(pool + 1)
            for a in range(pool - o + 1)
        ]
        space = StateSpace(states)

        # --- interaction outcomes from the previous level ---------------
        cap_loc = shares
        cap_rem = prev.pool_size - shares
        reduction, table = reduction_matrix(
            prev.usage, prev.own_lent, prev.backlog, cap_loc, cap_rem
        )
        levels = range(0, shares + pool + 1)
        initials = conditional_initials(prev.steady, prev.totals, levels)

        horizons: list[float] = [1.0 / lam]
        horizon_index: dict[float, int] = {horizons[0]: 0}
        for count in range(1, max(n, pool) + 1):
            tau = 1.0 / (count * mu)
            if tau not in horizon_index:
                horizon_index[tau] = len(horizons)
                horizons.append(tau)
        outcome_dists = transient_outcomes(
            prev.ctmc,
            initials,
            reduction,
            horizons,
            epsilon=self.transient_epsilon,
        )

        def significant(tau: float, level: int) -> list[tuple[int, int, bool, float]]:
            dist = outcome_dists[horizon_index[tau]][level]
            kept = [
                (table.outcomes[j][0], table.outcomes[j][1], table.outcomes[j][2], p)
                for j, p in enumerate(dist)
                if p > self.outcome_threshold
            ]
            if len(kept) > self.max_outcomes:
                kept.sort(key=lambda item: -item[3])
                kept = kept[: self.max_outcomes]
            total = sum(item[3] for item in kept)
            if total <= 0.0:
                return []
            return [(al, ar, bk, p / total) for al, ar, bk, p in kept]

        outcome_cache: dict[tuple[float, int], list[tuple[int, int, bool, float]]] = {}

        def outcomes_for(tau: float, level: int) -> list[tuple[int, int, bool, float]]:
            key = (tau, level)
            if key not in outcome_cache:
                outcome_cache[key] = significant(tau, level)
            return outcome_cache[key]

        # --- transition assembly -----------------------------------------
        index_of = _StateIndexer(q_max, shares, pool)
        if self._assembly == "reference":
            rows, cols, vals, forward = self._assemble_level_reference(
                space, n, mu, lam, shares, pool, q_max, cloud.sla_bound,
                outcomes_for, index_of,
            )
        else:
            rows, cols, vals, forward = self._assemble_level_vectorized(
                n, mu, lam, shares, pool, q_max, cloud.sla_bound,
                outcomes_for, index_of,
            )
        ctmc = CTMC(space, self._generator(len(space), rows, cols, vals))
        pi = self._solve_steady(ctmc, ("level", q_max, shares, pool))
        q_arr, s_arr, o_arr, a_arr = _state_arrays(q_max, shares, pool)
        return _Level(
            space=space,
            steady=pi,
            ctmc=ctmc,
            usage=o_arr + a_arr,
            own_lent=s_arr,
            backlog=np.maximum(q_arr - (n - s_arr), 0),
            totals=s_arr + o_arr + a_arr,
            pool_size=pool,
            forward_flow=forward,
            cloud=cloud,
        )

    @staticmethod
    def _generator(
        n_states: int, rows: np.ndarray, cols: np.ndarray, vals: np.ndarray
    ) -> sp.csr_matrix:
        """COO entries (reference emission order) -> zero-row-sum CSR."""
        q_matrix = sp.coo_matrix(
            (vals, (rows, cols)), shape=(n_states, n_states)
        ).tocsr()
        return q_matrix - sp.diags(
            np.asarray(q_matrix.sum(axis=1)).ravel(), format="csr"
        )

    def _assemble_level_reference(
        self,
        space: StateSpace,
        n: int,
        mu: float,
        lam: float,
        shares: int,
        pool: int,
        q_max: int,
        sla: float,
        outcomes_for: Callable[[float, int], list],
        index_of: _StateIndexer,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """The per-state assembly loop, retained verbatim as the equality
        oracle for the vectorized assembler.

        Destinations are resolved to dense indices immediately and
        accumulated in compact typed arrays: a tuple-based transition
        list at this fan-out (states x outcomes) costs gigabytes.
        """
        rows = array("i")
        cols = array("i")
        vals = array("d")

        def add(src: int, q2: int, s2: int, o2: int, a2: int, rate: float) -> None:
            dst = index_of(q2, s2, o2, a2)
            if dst != src:
                rows.append(src)
                cols.append(dst)
                vals.append(rate)

        forward = np.zeros(len(space))
        tau_arrival = 1.0 / lam
        for idx, (q, s, o, a) in enumerate(space):
            level = s + a
            # Arrivals (cases C1-C3).
            for a_loc, a_rem_raw, _bk, p in outcomes_for(tau_arrival, level):
                rate = lam * p
                if q + a_loc < n:
                    add(idx, q + 1, a_loc, o, min(a_rem_raw, pool - o), rate)
                elif o + a_rem_raw + 1 <= pool:
                    add(idx, q, a_loc, o + 1, a_rem_raw, rate)
                else:
                    a_rem = pool - o
                    waiting = q - (n - a_loc)
                    capacity = n - a_loc + o
                    p_queue = prob_no_forward(waiting, capacity, mu, sla)
                    if q + 1 <= q_max and p_queue > 0.0:
                        add(idx, q + 1, a_loc, o, a_rem, rate * p_queue)
                        forward[idx] += rate * (1.0 - p_queue)
                    else:
                        # Queue truncated (or SLA surely violated): the
                        # arrival is forwarded, but the group-allocation
                        # refresh still happens — without it, corner
                        # states like (q_max, s=N, o=0) would have no
                        # outgoing transition at all (all VMs lent, no
                        # local service), making the chain reducible.
                        forward[idx] += rate
                        add(idx, q, a_loc, o, a_rem, rate)
            # Local departures (case C4).
            running = min(q, n - s)
            if running > 0:
                tau = 1.0 / (running * mu)
                for a_loc, a_rem_raw, bk, p in outcomes_for(tau, level):
                    rate = running * mu * p
                    a_rem = min(a_rem_raw, pool - o)
                    if q + a_loc <= n and bk and a_loc < shares:
                        add(idx, q - 1, a_loc + 1, o, a_rem, rate)
                    else:
                        add(idx, q - 1, a_loc, o, a_rem, rate)
            # Remote departures (case C5).
            if o > 0:
                tau = 1.0 / (o * mu)
                for a_loc, a_rem_raw, bk, p in outcomes_for(tau, level):
                    rate = o * mu * p
                    if bk:
                        add(idx, q, a_loc, o - 1, min(a_rem_raw + 1, pool - (o - 1)), rate)
                    elif q + a_loc > n:
                        add(idx, q - 1, a_loc, o, min(a_rem_raw, pool - o), rate)
                    else:
                        add(idx, q, a_loc, o - 1, min(a_rem_raw, pool - (o - 1)), rate)
        return (
            np.frombuffer(rows, dtype=np.int32),
            np.frombuffer(cols, dtype=np.int32),
            np.frombuffer(vals, dtype=float),
            forward,
        )

    def _assemble_level_vectorized(
        self,
        n: int,
        mu: float,
        lam: float,
        shares: int,
        pool: int,
        q_max: int,
        sla: float,
        outcomes_for: Callable[[float, int], list],
        index_of: _StateIndexer,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Batch assembly of one level's generator.

        States are grouped by interaction level ``s + a`` (arrivals), by
        ``(running, level)`` (local departures), and by ``(o, level)``
        (remote departures); each group shares one outcome distribution,
        so every ``(event, group, outcome)`` triple becomes a single
        broadcast through the closed-form indexer arithmetic.  The SLA
        race probabilities are precomputed as a ``(waiting, busy)`` table
        from the same scalar :func:`prob_no_forward`, so every float
        matches the reference bit for bit.
        """
        q_arr, s_arr, o_arr, a_arr = _state_arrays(q_max, shares, pool)
        n_states = q_arr.size
        level_arr = s_arr + a_arr
        n_levels = shares + pool + 1
        forward = np.zeros(n_states)
        sink = _EntrySink(max_outcomes=self.max_outcomes)
        all_idx = np.arange(n_states, dtype=np.int64)

        # P^NF as a dense (waiting, busy) lookup — a few hundred scalar
        # calls replace one call per (state, outcome) pair.
        pq_table = np.array(
            [
                [prob_no_forward(w, c, mu, sla) for c in range(n + pool + 1)]
                for w in range(q_max + 1)
            ]
        )

        def level_groups(
            member: np.ndarray, group_key: np.ndarray
        ) -> list[tuple[int, np.ndarray]]:
            """Split ``member`` states into index arrays per group key
            (each ascending, so per-state emission order is preserved)."""
            members = all_idx[member]
            keys = group_key[member]
            order = np.argsort(keys, kind="stable")
            members = members[order]
            keys = keys[order]
            uniques, starts = np.unique(keys, return_index=True)
            bounds = np.append(starts[1:], members.size)
            return [
                (int(u), members[lo:hi])
                for u, lo, hi in zip(uniques, starts, bounds)
            ]

        # --- arrivals (cases C1-C3), grouped by interaction level -------
        tau_arrival = 1.0 / lam
        for lvl, st in level_groups(np.ones(n_states, dtype=bool), level_arr):
            qv, sv, ov = q_arr[st], s_arr[st], o_arr[st]
            for j, (a_loc, a_rem_raw, _bk, p) in enumerate(outcomes_for(tau_arrival, lvl)):
                rate = lam * p
                c1 = qv + a_loc < n
                if c1.any():
                    sink.emit(
                        st[c1],
                        index_of.index_arrays(
                            qv[c1] + 1, a_loc, ov[c1],
                            np.minimum(a_rem_raw, pool - ov[c1]),
                        ),
                        np.array([rate]),
                        0,
                        j,
                    )
                rest = ~c1
                c2 = rest & (ov + a_rem_raw + 1 <= pool)
                if c2.any():
                    sink.emit(
                        st[c2],
                        index_of.index_arrays(qv[c2], a_loc, ov[c2] + 1, a_rem_raw),
                        np.array([rate]),
                        0,
                        j,
                    )
                c3 = rest & ~c2
                if c3.any():
                    st3, q3, o3 = st[c3], qv[c3], ov[c3]
                    a_rem = pool - o3
                    p_queue = pq_table[q3 - (n - a_loc), (n - a_loc) + o3]
                    queue_ok = (q3 + 1 <= q_max) & (p_queue > 0.0)
                    if queue_ok.any():
                        sink.emit(
                            st3[queue_ok],
                            index_of.index_arrays(
                                q3[queue_ok] + 1, a_loc, o3[queue_ok], a_rem[queue_ok]
                            ),
                            rate * p_queue[queue_ok],
                            0,
                            j,
                        )
                        forward[st3[queue_ok]] += rate * (1.0 - p_queue[queue_ok])
                    dropped = ~queue_ok
                    if dropped.any():
                        forward[st3[dropped]] += rate
                        sink.emit(
                            st3[dropped],
                            index_of.index_arrays(
                                q3[dropped], a_loc, o3[dropped], a_rem[dropped]
                            ),
                            np.array([rate]),
                            0,
                            j,
                        )

        # --- local departures (case C4), grouped by (running, level) ----
        running_arr = np.minimum(q_arr, n - s_arr)
        for key, st in level_groups(running_arr > 0, running_arr * n_levels + level_arr):
            running, lvl = divmod(key, n_levels)
            tau = 1.0 / (running * mu)
            qv, ov = q_arr[st], o_arr[st]
            for j, (a_loc, a_rem_raw, bk, p) in enumerate(outcomes_for(tau, lvl)):
                rate = running * mu * p
                a_rem = np.minimum(a_rem_raw, pool - ov)
                if bk and a_loc < shares:
                    promote = qv + a_loc <= n
                    if promote.any():
                        sink.emit(
                            st[promote],
                            index_of.index_arrays(
                                qv[promote] - 1, a_loc + 1, ov[promote], a_rem[promote]
                            ),
                            np.array([rate]),
                            1,
                            j,
                        )
                    plain = ~promote
                else:
                    promote = None
                    plain = slice(None)
                dst = index_of.index_arrays(qv[plain] - 1, a_loc, ov[plain], a_rem[plain])
                if dst.size:
                    sink.emit(st[plain], dst, np.array([rate]), 1, j)

        # --- remote departures (case C5), grouped by (o, level) ---------
        for key, st in level_groups(o_arr > 0, o_arr * n_levels + level_arr):
            o, lvl = divmod(key, n_levels)
            tau = 1.0 / (o * mu)
            qv = q_arr[st]
            for j, (a_loc, a_rem_raw, bk, p) in enumerate(outcomes_for(tau, lvl)):
                rate = o * mu * p
                if bk:
                    sink.emit(
                        st,
                        index_of.index_arrays(
                            qv, a_loc, o - 1, min(a_rem_raw + 1, pool - (o - 1))
                        ),
                        np.array([rate]),
                        2,
                        j,
                    )
                    continue
                over = qv + a_loc > n
                if over.any():
                    sink.emit(
                        st[over],
                        index_of.index_arrays(
                            qv[over] - 1, a_loc, o, min(a_rem_raw, pool - o)
                        ),
                        np.array([rate]),
                        2,
                        j,
                    )
                under = ~over
                if under.any():
                    sink.emit(
                        st[under],
                        index_of.index_arrays(
                            qv[under], a_loc, o - 1, min(a_rem_raw, pool - (o - 1))
                        ),
                        np.array([rate]),
                        2,
                        j,
                    )

        rows, cols, vals = sink.sorted_entries()
        return rows, cols, vals, forward

    # ------------------------------------------------------------------ #
    # parameter extraction
    # ------------------------------------------------------------------ #

    def _params_from_level(self, level: _Level) -> PerformanceParams:
        pi = level.steady
        cloud = level.cloud
        q_arr = np.array([st[0] for st in level.space])
        s_arr = level.own_lent
        o_arr = np.array([st[2] for st in level.space])
        running = np.minimum(q_arr, cloud.vms - s_arr)
        busy = running + s_arr
        return PerformanceParams(
            lent_mean=float(s_arr @ pi),
            borrowed_mean=float(o_arr @ pi),
            forward_rate=float(level.forward_flow @ pi),
            utilization=float(busy @ pi) / cloud.vms,
        )
