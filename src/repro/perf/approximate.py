"""The hierarchical approximate performance model ``M^1 .. M^K`` (Sect. III-C).

Each level ``M^i`` is a CTMC over ``(q_i, s_i, o_i, a_i)``:

- ``q_i`` — requests of SC i queued or in service at SC i,
- ``s_i`` — SC i's VMs serving the group ``{1..i-1}``,
- ``o_i`` — VMs SC i borrows from the shared pool,
- ``a_i`` — shared VMs (not SC i's) held by the group.

``M^1`` is solved directly (the first SC sees an uncontended pool).  Every
later level refreshes ``(s, a)`` at each event from the *interaction
outcome distributions* of the previous level (see
:mod:`repro.perf.interaction`): the group's allocation after the mean
inter-event period, conditioned on the current allocation, split between
the target's pool and the rest.  Transition cases C1–C5 follow the paper;
the group-backlog flag needed by C4/C5 is carried in the outcomes.

The chain is linear in K — evaluating the target SC builds K chains whose
individual sizes do not depend on K (only on the pool size ``B_i``).
Evaluating *all* SCs rotates each one into the target slot (the paper's
decentralized usage: each SC runs the chain with itself last).
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np
import scipy.sparse as sp

if TYPE_CHECKING:
    from repro.runtime.executor import Executor

from repro._validation import check_positive
from repro.core.small_cloud import FederationScenario, SmallCloud
from repro.markov.ctmc import CTMC
from repro.markov.solvers import steady_state
from repro.markov.state_space import StateSpace
from repro.perf.base import PerformanceModel
from repro.perf.interaction import (
    conditional_initials,
    reduction_matrix,
    transient_outcomes,
)
from repro.perf.params import PerformanceParams
from repro.queueing.forwarding import queue_truncation_level
from repro.queueing.sla import prob_no_forward


def _evaluate_target_task(
    task: "tuple[ApproximateModel, FederationScenario, int]",
) -> PerformanceParams:
    """Process-pool-friendly wrapper around one target rotation."""
    model, scenario, target = task
    return model.evaluate_target(scenario, target=target)


class _StateIndexer:
    """Closed-form index of a ``(q, s, o, a)`` state in enumeration order.

    The level state spaces enumerate ``q``, then ``s``, then the
    triangular ``(o, a)`` block with ``o + a <= pool``; this mirrors that
    enumeration arithmetically so transition assembly avoids per-lookup
    dict hashing of tuples.
    """

    __slots__ = ("shares", "pool", "_tri_base", "_block")

    def __init__(self, q_max: int, shares: int, pool: int) -> None:
        self.shares = shares
        self.pool = pool
        # _tri_base[o] = first index of row o inside the (o, a) triangle.
        self._tri_base = [0] * (pool + 1)
        offset = 0
        for o in range(pool + 1):
            self._tri_base[o] = offset
            offset += pool - o + 1
        self._block = (shares + 1) * offset  # states per q level

    def __call__(self, q: int, s: int, o: int, a: int) -> int:
        triangle = self._tri_base[o] + a
        per_s = self._tri_base[self.pool] + 1  # total (o, a) pairs
        return q * self._block + s * per_s + triangle


@dataclass
class _Level:
    """One solved chain of the hierarchy plus the arrays the next level needs."""

    space: StateSpace
    steady: np.ndarray
    ctmc: CTMC
    usage: np.ndarray  # U = o + a (non-own shared VMs used by the group+self)
    own_lent: np.ndarray  # s (this SC's VMs lent to the group)
    backlog: np.ndarray  # queued requests of this SC
    totals: np.ndarray  # T = s + o + a (total group {1..i} shared usage)
    pool_size: int  # B_i
    forward_flow: np.ndarray  # per-state public-cloud forwarding rate
    cloud: SmallCloud


class ApproximateModel(PerformanceModel):
    """Hierarchical approximate model (Sect. III-C).

    Args:
        tail_epsilon: queue truncation tolerance.
        transient_epsilon: Fox–Glynn truncation mass for the interaction
            transients.
        outcome_threshold: interaction outcomes with probability below
            this are dropped (and the rest renormalized) to bound the
            transition fan-out.
        max_outcomes: hard cap on the retained outcomes per interaction
            distribution (highest-probability outcomes win).  The cap
            bounds the generator at ``3 * max_outcomes`` transitions per
            state, which keeps the largest paper scenarios (10-SC pools,
            full sharing) within laptop memory; the discarded mass is
            below 1% in all benchmarked settings.
        executor: optional :class:`repro.runtime.executor.Executor` used
            by :meth:`evaluate` to rotate the K independent per-target
            chains in parallel.  Each rotation is a pure function of the
            scenario, so any executor (including process pools) returns
            results bit-identical to a serial run.
    """

    def __init__(
        self,
        tail_epsilon: float = 1e-9,
        transient_epsilon: float = 1e-8,
        outcome_threshold: float = 1e-7,
        max_outcomes: int = 48,
        executor: "Executor | None" = None,
    ) -> None:
        self.tail_epsilon = check_positive(tail_epsilon, "tail_epsilon")
        self.transient_epsilon = check_positive(transient_epsilon, "transient_epsilon")
        self.outcome_threshold = check_positive(outcome_threshold, "outcome_threshold")
        self.max_outcomes = int(max_outcomes)
        self.executor = executor

    # ------------------------------------------------------------------ #
    # public interface
    # ------------------------------------------------------------------ #

    def evaluate_target(self, scenario: FederationScenario, target: int | None = None) -> PerformanceParams:
        """Evaluate one SC accurately by running the chain with it last.

        Args:
            scenario: the federation (sharing vector included).
            target: index of the SC of interest; defaults to the last.
        """
        if target is not None and target != len(scenario) - 1:
            scenario = scenario.rotated_to_target(target)
        level = self._build_chain(scenario)
        return self._params_from_level(level)

    def evaluate(self, scenario: FederationScenario) -> list[PerformanceParams]:
        """Evaluate every SC by rotating each into the target slot.

        The K rotations are independent chains; with an executor they run
        in parallel (process pools ship a copy of the model configured
        without an executor, so workers never nest pools).
        """
        k = len(scenario)
        executor = self.executor
        if executor is None or executor.workers <= 1 or k == 1:
            return [self.evaluate_target(scenario, target=i) for i in range(k)]
        worker = ApproximateModel(
            tail_epsilon=self.tail_epsilon,
            transient_epsilon=self.transient_epsilon,
            outcome_threshold=self.outcome_threshold,
            max_outcomes=self.max_outcomes,
        )
        return executor.map(
            _evaluate_target_task, [(worker, scenario, i) for i in range(k)]
        )

    # ------------------------------------------------------------------ #
    # chain construction
    # ------------------------------------------------------------------ #

    def _build_chain(self, scenario: FederationScenario) -> _Level:
        level = self._build_first(scenario)
        for i in range(1, len(scenario)):
            level = self._build_level(scenario, i, level)
        return level

    def _q_max(self, scenario: FederationScenario, index: int) -> int:
        cloud = scenario[index]
        capacity = cloud.vms + scenario.shared_by_others(index)
        return queue_truncation_level(
            capacity, cloud.service_rate, cloud.sla_bound, self.tail_epsilon
        )

    def _build_first(self, scenario: FederationScenario) -> _Level:
        """``M^1``: the first SC has uncontended access to the pool."""
        cloud = scenario[0]
        pool = scenario.shared_by_others(0)
        q_max = self._q_max(scenario, 0)
        n = cloud.vms
        mu = cloud.service_rate
        lam = cloud.arrival_rate
        states = [(q, 0, o, 0) for q in range(q_max + 1) for o in range(pool + 1)]
        space = StateSpace(states)
        transitions: list[tuple[tuple, tuple, float]] = []
        forward = np.zeros(len(space))
        for idx, (q, _s, o, _a) in enumerate(space):
            if q < n:
                transitions.append(((q, 0, o, 0), (q + 1, 0, o, 0), lam))
            elif o < pool:
                transitions.append(((q, 0, o, 0), (q, 0, o + 1, 0), lam))
            else:
                p_queue = prob_no_forward(q - n, n + o, mu, cloud.sla_bound)
                if q + 1 <= q_max and p_queue > 0.0:
                    transitions.append(((q, 0, o, 0), (q + 1, 0, o, 0), lam * p_queue))
                    forward[idx] = lam * (1.0 - p_queue)
                else:
                    forward[idx] = lam
            running = min(q, n)
            if running > 0:
                transitions.append(((q, 0, o, 0), (q - 1, 0, o, 0), running * mu))
            if o > 0:
                transitions.append(((q, 0, o, 0), (q, 0, o - 1, 0), o * mu))
        ctmc = CTMC.from_transitions(space, transitions)
        pi = steady_state(ctmc.generator)
        q_arr = np.array([s[0] for s in space])
        o_arr = np.array([s[2] for s in space])
        return _Level(
            space=space,
            steady=pi,
            ctmc=ctmc,
            usage=o_arr,
            own_lent=np.zeros(len(space), dtype=int),
            backlog=np.maximum(q_arr - n, 0),
            totals=o_arr,
            pool_size=pool,
            forward_flow=forward,
            cloud=cloud,
        )

    def _build_level(
        self, scenario: FederationScenario, index: int, prev: _Level
    ) -> _Level:
        cloud = scenario[index]
        n = cloud.vms
        mu = cloud.service_rate
        lam = cloud.arrival_rate
        shares = cloud.shared_vms
        pool = scenario.shared_by_others(index)
        q_max = self._q_max(scenario, index)

        states = [
            (q, s, o, a)
            for q in range(q_max + 1)
            for s in range(shares + 1)
            for o in range(pool + 1)
            for a in range(pool - o + 1)
        ]
        space = StateSpace(states)

        # --- interaction outcomes from the previous level ---------------
        cap_loc = shares
        cap_rem = prev.pool_size - shares
        reduction, table = reduction_matrix(
            prev.usage, prev.own_lent, prev.backlog, cap_loc, cap_rem
        )
        levels = range(0, shares + pool + 1)
        initials = conditional_initials(prev.steady, prev.totals, levels)

        horizons: list[float] = [1.0 / lam]
        horizon_index: dict[float, int] = {horizons[0]: 0}
        for count in range(1, max(n, pool) + 1):
            tau = 1.0 / (count * mu)
            if tau not in horizon_index:
                horizon_index[tau] = len(horizons)
                horizons.append(tau)
        outcome_dists = transient_outcomes(
            prev.ctmc,
            initials,
            reduction,
            horizons,
            epsilon=self.transient_epsilon,
        )

        def significant(tau: float, level: int) -> list[tuple[int, int, bool, float]]:
            dist = outcome_dists[horizon_index[tau]][level]
            kept = [
                (table.outcomes[j][0], table.outcomes[j][1], table.outcomes[j][2], p)
                for j, p in enumerate(dist)
                if p > self.outcome_threshold
            ]
            if len(kept) > self.max_outcomes:
                kept.sort(key=lambda item: -item[3])
                kept = kept[: self.max_outcomes]
            total = sum(item[3] for item in kept)
            if total <= 0.0:
                return []
            return [(al, ar, bk, p / total) for al, ar, bk, p in kept]

        outcome_cache: dict[tuple[float, int], list[tuple[int, int, bool, float]]] = {}

        def outcomes_for(tau: float, level: int) -> list[tuple[int, int, bool, float]]:
            key = (tau, level)
            if key not in outcome_cache:
                outcome_cache[key] = significant(tau, level)
            return outcome_cache[key]

        # --- transition assembly -----------------------------------------
        # Destinations are resolved to dense indices immediately and
        # accumulated in compact typed arrays: a tuple-based transition
        # list at this fan-out (states x outcomes) costs gigabytes.
        sla = cloud.sla_bound
        index_of = _StateIndexer(q_max, shares, pool)
        rows = array("i")
        cols = array("i")
        vals = array("d")

        def add(src: int, q2: int, s2: int, o2: int, a2: int, rate: float) -> None:
            dst = index_of(q2, s2, o2, a2)
            if dst != src:
                rows.append(src)
                cols.append(dst)
                vals.append(rate)

        forward = np.zeros(len(space))
        tau_arrival = 1.0 / lam
        for idx, (q, s, o, a) in enumerate(space):
            level = s + a
            # Arrivals (cases C1-C3).
            for a_loc, a_rem_raw, _bk, p in outcomes_for(tau_arrival, level):
                rate = lam * p
                if q + a_loc < n:
                    add(idx, q + 1, a_loc, o, min(a_rem_raw, pool - o), rate)
                elif o + a_rem_raw + 1 <= pool:
                    add(idx, q, a_loc, o + 1, a_rem_raw, rate)
                else:
                    a_rem = pool - o
                    waiting = q - (n - a_loc)
                    capacity = n - a_loc + o
                    p_queue = prob_no_forward(waiting, capacity, mu, sla)
                    if q + 1 <= q_max and p_queue > 0.0:
                        add(idx, q + 1, a_loc, o, a_rem, rate * p_queue)
                        forward[idx] += rate * (1.0 - p_queue)
                    else:
                        # Queue truncated (or SLA surely violated): the
                        # arrival is forwarded, but the group-allocation
                        # refresh still happens — without it, corner
                        # states like (q_max, s=N, o=0) would have no
                        # outgoing transition at all (all VMs lent, no
                        # local service), making the chain reducible.
                        forward[idx] += rate
                        add(idx, q, a_loc, o, a_rem, rate)
            # Local departures (case C4).
            running = min(q, n - s)
            if running > 0:
                tau = 1.0 / (running * mu)
                for a_loc, a_rem_raw, bk, p in outcomes_for(tau, level):
                    rate = running * mu * p
                    a_rem = min(a_rem_raw, pool - o)
                    if q + a_loc <= n and bk and a_loc < shares:
                        add(idx, q - 1, a_loc + 1, o, a_rem, rate)
                    else:
                        add(idx, q - 1, a_loc, o, a_rem, rate)
            # Remote departures (case C5).
            if o > 0:
                tau = 1.0 / (o * mu)
                for a_loc, a_rem_raw, bk, p in outcomes_for(tau, level):
                    rate = o * mu * p
                    if bk:
                        add(idx, q, a_loc, o - 1, min(a_rem_raw + 1, pool - (o - 1)), rate)
                    elif q + a_loc > n:
                        add(idx, q - 1, a_loc, o, min(a_rem_raw, pool - o), rate)
                    else:
                        add(idx, q, a_loc, o - 1, min(a_rem_raw, pool - (o - 1)), rate)

        n_states = len(space)
        q_matrix = sp.coo_matrix(
            (np.frombuffer(vals, dtype=float),
             (np.frombuffer(rows, dtype=np.int32),
              np.frombuffer(cols, dtype=np.int32))),
            shape=(n_states, n_states),
        ).tocsr()
        q_matrix = q_matrix - sp.diags(
            np.asarray(q_matrix.sum(axis=1)).ravel(), format="csr"
        )
        ctmc = CTMC(space, q_matrix)
        pi = steady_state(ctmc.generator)
        q_arr = np.array([st[0] for st in space])
        s_arr = np.array([st[1] for st in space])
        o_arr = np.array([st[2] for st in space])
        a_arr = np.array([st[3] for st in space])
        return _Level(
            space=space,
            steady=pi,
            ctmc=ctmc,
            usage=o_arr + a_arr,
            own_lent=s_arr,
            backlog=np.maximum(q_arr - (n - s_arr), 0),
            totals=s_arr + o_arr + a_arr,
            pool_size=pool,
            forward_flow=forward,
            cloud=cloud,
        )

    # ------------------------------------------------------------------ #
    # parameter extraction
    # ------------------------------------------------------------------ #

    def _params_from_level(self, level: _Level) -> PerformanceParams:
        pi = level.steady
        cloud = level.cloud
        q_arr = np.array([st[0] for st in level.space])
        s_arr = np.array([st[1] for st in level.space])
        o_arr = np.array([st[2] for st in level.space])
        running = np.minimum(q_arr, cloud.vms - s_arr)
        busy = running + s_arr
        return PerformanceParams(
            lent_mean=float(s_arr @ pi),
            borrowed_mean=float(o_arr @ pi),
            forward_rate=float(level.forward_flow @ pi),
            utilization=float(busy @ pi) / cloud.vms,
        )
