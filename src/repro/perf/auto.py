"""Budget-driven hybrid model selection (the ``auto`` tier).

Large-K market sweeps should never pay for precision the market loop
does not need: a federation whose no-sharing/full-pooling bracket
(:mod:`repro.perf.bounds`) is already narrower than the caller's error
budget cannot be mispriced by more than that bracket no matter how
crude the estimator, while a 2-SC validation scenario under a tight
budget deserves the exact CTMC.  :class:`AutoModel` encodes exactly
that triage as a deterministic, content-pure function of the scenario:

- **pooled** — when the bracket width relative to the no-sharing
  forwarding level is within the budget, sharing cannot move the
  forwarding observables by more than the tolerated error; the
  fixed-point :class:`~repro.perf.pooled.PooledModel` (whose error is
  bounded by the same bracket) is sufficient.
- **detailed** — when the budget is tighter than the hierarchical
  model's validated accuracy floor (about 1%, the paper's Fig. 6
  comparison against the exact CTMC) *and* the federation is small
  enough for the exponential state space, the exact
  :class:`~repro.perf.detailed.DetailedModel` answers.
- **approximate** — everything else: the linear-in-K hierarchical chain
  (:class:`~repro.perf.approximate.ApproximateModel`), the paper's
  workhorse.

Selection depends only on the scenario's performance-relevant content
(rates, capacities, SLAs, sharing totals) and the declared budget —
never on wall-clock, environment, or evaluation history — so a sweep
re-run anywhere reproduces the same tier per query, and the per-query
choice is observable through the ``perf.auto.*`` counters.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro import obs
from repro._validation import check_positive, check_positive_int, require
from repro.core.small_cloud import FederationScenario
from repro.perf.base import PerformanceModel
from repro.perf.bounds import forwarding_bounds
from repro.perf.params import PerformanceParams

if TYPE_CHECKING:
    from repro.runtime.executor import Executor

#: Validated relative accuracy of the hierarchical approximate model
#: against the exact CTMC (paper Sect. V-A / Fig. 6: within ~1% on the
#: forwarding observables across the validation scenarios).  Budgets
#: tighter than this floor escalate to the detailed model when feasible.
APPROXIMATE_ACCURACY_FLOOR = 0.01

#: Forwarding scale below which the bracket test degenerates (nothing to
#: forward means nothing to misprice); treated as "pooled suffices".
_NEGLIGIBLE_FORWARDING = 1e-12

#: Pre-built per-tier metric names: _pick runs once per model query, and
#: an f-string there formats eagerly even with metrics disabled (RPR405).
_TIER_METRICS = {
    name: f"perf.auto.{name}" for name in ("pooled", "approximate", "detailed")
}


@dataclass(frozen=True)
class ErrorBudget:
    """A declared error-vs-cost tolerance for model selection.

    Attributes:
        relative_error: tolerated relative error on the forwarding-scale
            observables (the quantities Eq. 1 prices).  The default of
            2% sits between the approximate model's validated ~1% floor
            and the coarse bracket screen, so the default budget selects
            the paper's approximate model except where the bracket test
            proves pooled is enough.
        detailed_max_k: largest federation the exact CTMC may be asked
            to solve (its state space is exponential in K; the paper
            uses it for 2–3 SCs).
        detailed_max_pool: largest federation-wide shared total for the
            exact CTMC (the who-serves-whom matrix blows up with the
            pool, independently of K).
    """

    relative_error: float = 0.02
    detailed_max_k: int = 3
    detailed_max_pool: int = 6

    def __post_init__(self) -> None:
        check_positive(self.relative_error, "relative_error")
        check_positive_int(self.detailed_max_k, "detailed_max_k")
        check_positive_int(self.detailed_max_pool, "detailed_max_pool")


class AutoModel(PerformanceModel):
    """Hybrid performance model: picks a tier per query from the budget.

    Args:
        budget: the declared :class:`ErrorBudget` (defaults are
            calibrated for market sweeps: approximate unless provably
            unnecessary or insufficient).
        executor: optional executor handed to the approximate tier's
            rotation/sharding parallelism.
        detailed, approximate, pooled: optional pre-configured tier
            models; defaults are constructed lazily with each tier's
            default configuration.  When this model fronts a persistent
            params cache, keep the defaults — the cache fingerprints
            this model's public scalars (budget terms), not the
            sub-models' internals.
        mode: evaluation mode forwarded to a default-constructed
            approximate tier (``"monolithic"``, ``"sharded"``, or
            ``"incremental"``; see :class:`ApproximateModel`).
    """

    def __init__(
        self,
        budget: ErrorBudget | None = None,
        executor: "Executor | None" = None,
        detailed: PerformanceModel | None = None,
        approximate: PerformanceModel | None = None,
        pooled: PerformanceModel | None = None,
        mode: str = "monolithic",
    ) -> None:
        budget = budget if budget is not None else ErrorBudget()
        require(
            mode in ("monolithic", "sharded", "incremental"),
            f"mode must be 'monolithic', 'sharded', or 'incremental', got {mode!r}",
        )
        self.budget = budget
        # Budget terms mirrored as public scalars: the disk cache's
        # model fingerprint collects exactly these.
        self.relative_error = budget.relative_error  # fingerprint via model_fingerprint
        self.detailed_max_k = budget.detailed_max_k  # fingerprint via model_fingerprint
        self.detailed_max_pool = budget.detailed_max_pool  # fingerprint via model_fingerprint
        self._executor = executor
        self._mode = mode
        self._detailed = detailed
        self._approximate = approximate
        self._pooled = pooled
        self._counts = {"pooled": 0, "approximate": 0, "detailed": 0}  # guarded-by: _counts_lock
        self._counts_lock = threading.Lock()

    # -- pickling: drop the lock (executors ship model copies) ---------- #

    def __getstate__(self) -> dict[str, object]:
        state = dict(self.__dict__)
        del state["_counts_lock"]
        state["_counts"] = dict.fromkeys(self._counts, 0)
        return state

    def __setstate__(self, state: dict[str, object]) -> None:
        self.__dict__.update(state)
        self._counts_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # tier selection
    # ------------------------------------------------------------------ #

    def select(self, scenario: FederationScenario) -> str:
        """The tier (``"pooled"`` / ``"approximate"`` / ``"detailed"``)
        this budget picks for ``scenario`` — pure and deterministic."""
        bounds = forwarding_bounds(scenario)
        if bounds.upper <= _NEGLIGIBLE_FORWARDING:
            return "pooled"
        if bounds.width / bounds.upper <= self.budget.relative_error:
            return "pooled"
        if (
            self.budget.relative_error < APPROXIMATE_ACCURACY_FLOOR
            and len(scenario) <= self.budget.detailed_max_k
            and scenario.total_shared() <= self.budget.detailed_max_pool
        ):
            return "detailed"
        return "approximate"

    def _tier(self, name: str) -> PerformanceModel:
        if name == "pooled":
            if self._pooled is None:
                from repro.perf.pooled import PooledModel

                self._pooled = PooledModel()
            return self._pooled
        if name == "detailed":
            if self._detailed is None:
                from repro.perf.detailed import DetailedModel

                self._detailed = DetailedModel()
            return self._detailed
        if self._approximate is None:
            from repro.perf.approximate import ApproximateModel

            self._approximate = ApproximateModel(
                executor=self._executor, mode=self._mode
            )
        return self._approximate

    def _pick(self, scenario: FederationScenario) -> tuple[str, PerformanceModel]:
        name = self.select(scenario)
        with self._counts_lock:
            self._counts[name] += 1
        obs.inc(_TIER_METRICS[name])
        return name, self._tier(name)

    def selection_counts(self) -> dict[str, int]:
        """How many queries each tier has answered so far."""
        with self._counts_lock:
            return dict(self._counts)

    # ------------------------------------------------------------------ #
    # PerformanceModel interface
    # ------------------------------------------------------------------ #

    def evaluate(self, scenario: FederationScenario) -> list[PerformanceParams]:
        name, model = self._pick(scenario)
        with obs.span("perf.auto.evaluate", k=len(scenario), tier=name):
            return model.evaluate(scenario)

    def evaluate_target(
        self,
        scenario: FederationScenario,
        target: int | None = None,
        deviation: int | None = None,
    ) -> PerformanceParams:
        name, model = self._pick(scenario)
        index = len(scenario) - 1 if target is None else int(target)
        with obs.span("perf.auto.solve", k=len(scenario), tier=name):
            return model.evaluate_target(scenario, index, deviation=deviation)
