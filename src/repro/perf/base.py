"""Common interface of all performance models.

A performance model maps a :class:`~repro.core.small_cloud.FederationScenario`
(which fixes the sharing vector ``S``) to per-SC
:class:`~repro.perf.params.PerformanceParams`.  The market game is written
against this interface, so the exact, approximate, pooled, and simulated
estimators are interchangeable.
"""

from __future__ import annotations

import abc

from repro.core.small_cloud import FederationScenario
from repro.perf.params import PerformanceParams


class PerformanceModel(abc.ABC):
    """Abstract estimator of federation performance parameters."""

    @abc.abstractmethod
    def evaluate(self, scenario: FederationScenario) -> list[PerformanceParams]:
        """Return one :class:`PerformanceParams` per SC, in scenario order."""

    def evaluate_target(
        self, scenario: FederationScenario, target: int
    ) -> PerformanceParams:
        """Return the parameters of SC ``target`` only.

        The default evaluates everything and projects; subclasses that can
        evaluate a single SC more cheaply (the hierarchical approximate
        model) override this.
        """
        return self.evaluate(scenario)[target]
