"""Common interface of all performance models.

A performance model maps a :class:`~repro.core.small_cloud.FederationScenario`
(which fixes the sharing vector ``S``) to per-SC
:class:`~repro.perf.params.PerformanceParams`.  The market game is written
against this interface, so the exact, approximate, pooled, and simulated
estimators are interchangeable.
"""

from __future__ import annotations

import abc

from repro.core.small_cloud import FederationScenario
from repro.perf.params import PerformanceParams


class PerformanceModel(abc.ABC):
    """Abstract estimator of federation performance parameters."""

    @abc.abstractmethod
    def evaluate(self, scenario: FederationScenario) -> list[PerformanceParams]:
        """Return one :class:`PerformanceParams` per SC, in scenario order."""

    def evaluate_target(
        self,
        scenario: FederationScenario,
        target: int,
        deviation: int | None = None,
    ) -> PerformanceParams:
        """Return the parameters of SC ``target`` only.

        The default evaluates everything and projects; subclasses that can
        evaluate a single SC more cheaply (the hierarchical approximate
        model) override this.

        Args:
            scenario: the federation (sharing vector included).
            target: index of the SC of interest.
            deviation: optional index of the single SC whose decision
                changed since the caller's previous query on an otherwise
                identical scenario.  Best-response and Tabu scans plumb
                this through so incremental models can attribute reuse;
                models are free to ignore it, and no model may let it
                change results (reuse must be decided by content, not by
                trusting the hint).
        """
        return self.evaluate(scenario)[target]
