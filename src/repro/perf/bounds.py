"""Analytic brackets on federation performance.

Two easily computed systems bound the true federation between them:

- **No-sharing upper bound** on forwarding: each SC alone (Sect. III-A)
  forwards at least as much as it would inside any federation — sharing
  can only add service capacity.
- **Full-pooling lower bound**: merging every SC into one big
  SLA-queueing system with ``sum(N_i)`` VMs and ``sum(lambda_i)`` load is
  the perfect-sharing limit (no share caps, no lending frictions), so its
  forwarding under-estimates every real federation's.

The brackets serve three purposes: sanity tests for every estimator
(model outputs must land inside), a quick feasibility screen before
running expensive models, and a measure of *how much* of the theoretical
pooling gain a sharing vector actually captures
(:func:`pooling_gain_captured`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.small_cloud import FederationScenario
from repro.queueing.forwarding import NoSharingModel


@dataclass(frozen=True)
class ForwardingBounds:
    """Bracket on the federation's total public-cloud forwarding rate.

    Attributes:
        upper: total forwarding with no sharing at all (sum of per-SC
            Sect. III-A models).
        lower: total forwarding under perfect pooling (one merged system).
    """

    upper: float
    lower: float

    @property
    def width(self) -> float:
        """The maximum value cooperation can possibly save."""
        return self.upper - self.lower

    def contains(self, total_forward_rate: float, slack: float = 1e-6) -> bool:
        """Whether a measured total forwarding rate lies in the bracket."""
        return self.lower - slack <= total_forward_rate <= self.upper + slack


def _merged_model(scenario: FederationScenario) -> NoSharingModel:
    total_vms = sum(c.vms for c in scenario)
    total_rate = sum(c.arrival_rate for c in scenario)
    # The merged system adopts the tightest SLA and slowest service among
    # members, which keeps the bound conservative (pessimistic pooling
    # still beats any real federation's frictions for the metrics here).
    sla = min(c.sla_bound for c in scenario)
    mu = min(c.service_rate for c in scenario)
    return NoSharingModel(
        servers=total_vms, arrival_rate=total_rate, service_rate=mu, sla_bound=sla
    )


def forwarding_bounds(scenario: FederationScenario) -> ForwardingBounds:
    """Compute the no-sharing / full-pooling bracket for a scenario."""
    upper = sum(
        NoSharingModel(
            c.vms, c.arrival_rate, c.service_rate, c.sla_bound
        ).forward_rate
        for c in scenario
    )
    lower = _merged_model(scenario).forward_rate
    return ForwardingBounds(upper=upper, lower=lower)


def pooling_gain_captured(
    scenario: FederationScenario, total_forward_rate: float
) -> float:
    """Fraction of the theoretical pooling gain a federation achieves.

    0 means no better than isolation, 1 means as good as perfect pooling.
    Values are clipped to [0, 1] to absorb estimator noise.

    Args:
        scenario: the federation.
        total_forward_rate: the measured/estimated total ``sum(Pbar_i)``.
    """
    bounds = forwarding_bounds(scenario)
    if bounds.width <= 0.0:
        return 1.0  # nothing to gain: isolation is already optimal
    captured = (bounds.upper - total_forward_rate) / bounds.width
    return min(max(captured, 0.0), 1.0)
