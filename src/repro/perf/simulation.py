"""Simulation-backed performance model.

Adapts the discrete-event :class:`~repro.sim.federation.FederationSimulator`
to the :class:`~repro.perf.base.PerformanceModel` interface so that the
market game (or any other consumer) can run against simulated ground
truth.  Estimates are stochastic; horizon and warmup control accuracy.
"""

from __future__ import annotations

from repro._validation import check_non_negative, check_non_negative_int, check_positive
from repro.core.small_cloud import FederationScenario
from repro.exceptions import ConfigurationError
from repro.perf.base import PerformanceModel
from repro.perf.params import PerformanceParams
from repro.sim.federation import FederationSimulator


class SimulationModel(PerformanceModel):
    """Performance parameters estimated by discrete-event simulation.

    Args:
        horizon: simulated time per evaluation.
        warmup: initial transient excluded from statistics.
        seed: base RNG seed; each evaluation reuses the same seed so the
            model is deterministic for a fixed scenario (common random
            numbers across sharing decisions).
    """

    def __init__(self, horizon: float = 50_000.0, warmup: float = 2_000.0, seed: int = 0) -> None:
        self.horizon = check_positive(horizon, "horizon")
        self.warmup = check_non_negative(warmup, "warmup")
        if self.warmup >= self.horizon:
            raise ConfigurationError("warmup must be shorter than horizon")
        self.seed = check_non_negative_int(seed, "seed")

    def evaluate(self, scenario: FederationScenario) -> list[PerformanceParams]:
        """Simulate the scenario and project the per-SC metrics."""
        simulator = FederationSimulator(scenario, seed=self.seed)
        metrics = simulator.run(horizon=self.horizon, warmup=self.warmup)
        return [
            PerformanceParams(
                lent_mean=m.lent_mean,
                borrowed_mean=m.borrowed_mean,
                forward_rate=m.forward_rate,
                utilization=m.utilization,
            )
            for m in metrics
        ]
