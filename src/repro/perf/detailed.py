"""The detailed (exact) federation CTMC ``M`` of Sect. III-B.

The joint state tracks, for every SC i, the number of its own requests in
its local system (``q_i``) and the full who-serves-whom matrix
(``borrow[o][h]`` = VMs at host ``h`` serving owner ``o``'s requests).
Transition semantics follow Table I with the index typos resolved (see
DESIGN.md): load-balanced lending on arrival, max-backlog lending on local
release, owner-priority return of borrowed VMs, SLA-probabilistic
queue-or-forward when the whole federation is saturated.

The state space is exponential in K — the model is only practical for
federations of 2–3 small SCs, exactly the regime the paper uses it in
(validating the approximate model); larger scenarios use the simulator.
Only *reachable* states are materialized (breadth-first exploration from
the empty state), which shrinks the space considerably.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro._validation import check_positive
from repro.core.small_cloud import FederationScenario
from repro.exceptions import ConfigurationError
from repro.markov.ctmc import CTMC
from repro.markov.state_space import StateSpace, explore
from repro.perf.base import PerformanceModel
from repro.perf.params import PerformanceParams
from repro.queueing.forwarding import queue_truncation_level
from repro.queueing.sla import prob_no_forward

# A state is (q_0, .., q_{K-1}, borrow_pairs...) where borrow pairs are
# flattened in the fixed order (owner, host) for owner != host.


@dataclass(frozen=True)
class _Derived:
    """Derived per-SC quantities of one joint state."""

    lent: tuple[int, ...]  # VMs lent by each SC
    borrowed: tuple[int, ...]  # VMs borrowed by each SC
    own_running: tuple[int, ...]  # own requests served locally
    backlog: tuple[int, ...]  # own requests waiting
    free: tuple[int, ...]  # idle VMs


class DetailedModel(PerformanceModel):
    """Exact CTMC performance model (Sect. III-B).

    Args:
        tail_epsilon: SLA-queue truncation tolerance (see
            :func:`repro.queueing.forwarding.queue_truncation_level`).
        max_states: safety bound on the reachable state space.
    """

    def __init__(self, tail_epsilon: float = 1e-9, max_states: int = 2_000_000) -> None:
        self.tail_epsilon = check_positive(tail_epsilon, "tail_epsilon")
        self.max_states = max_states

    # ------------------------------------------------------------------ #
    # state helpers
    # ------------------------------------------------------------------ #

    @staticmethod
    def _pair_order(k: int) -> list[tuple[int, int]]:
        return [(o, h) for o in range(k) for h in range(k) if o != h]

    def _derive(self, scenario: FederationScenario, state: tuple) -> _Derived:
        k = len(scenario)
        q = state[:k]
        pairs = self._pair_order(k)
        borrow = {pair: state[k + idx] for idx, pair in enumerate(pairs)}
        lent = tuple(sum(borrow[(o, h)] for o in range(k) if o != h) for h in range(k))
        borrowed = tuple(
            sum(borrow[(o, h)] for h in range(k) if h != o) for o in range(k)
        )
        own_running = tuple(
            min(q[i], scenario[i].vms - lent[i]) for i in range(k)
        )
        backlog = tuple(q[i] - own_running[i] for i in range(k))
        free = tuple(
            scenario[i].vms - lent[i] - own_running[i] for i in range(k)
        )
        return _Derived(
            lent=lent,
            borrowed=borrowed,
            own_running=own_running,
            backlog=backlog,
            free=free,
        )

    def _q_max(self, scenario: FederationScenario, index: int) -> int:
        cloud = scenario[index]
        capacity = cloud.vms + scenario.shared_by_others(index)
        return queue_truncation_level(
            capacity, cloud.service_rate, cloud.sla_bound, self.tail_epsilon
        )

    # ------------------------------------------------------------------ #
    # transition semantics
    # ------------------------------------------------------------------ #

    def _successors(
        self, scenario: FederationScenario, q_max: tuple[int, ...]
    ) -> Callable[[tuple], list[tuple[tuple, float]]]:
        k = len(scenario)
        pairs = self._pair_order(k)
        pair_index = {pair: idx for idx, pair in enumerate(pairs)}

        def set_q(state: tuple, i: int, value: int) -> tuple:
            return state[:i] + (value,) + state[i + 1 :]

        def bump_pair(state: tuple, owner: int, host: int, delta: int) -> tuple:
            idx = k + pair_index[(owner, host)]
            return state[:idx] + (state[idx] + delta,) + state[idx + 1 :]

        def successors(state: tuple) -> list[tuple[tuple, float]]:
            derived = self._derive(scenario, state)
            transitions: list[tuple[tuple, float]] = []

            for i, cloud in enumerate(scenario):
                rate = cloud.arrival_rate
                if derived.free[i] > 0:
                    transitions.append((set_q(state, i, state[i] + 1), rate))
                    continue
                lenders = [
                    j
                    for j in range(k)
                    if j != i
                    and derived.free[j] > 0
                    and derived.lent[j] < scenario[j].shared_vms
                ]
                if lenders:
                    loads = [state[j] + derived.lent[j] for j in lenders]
                    best = min(loads)
                    tied = [j for j, load in zip(lenders, loads) if load == best]
                    for j in tied:
                        transitions.append(
                            (bump_pair(state, i, j, +1), rate / len(tied))
                        )
                    continue
                # Everything saturated: queue with the SLA probability.
                busy_for_i = derived.own_running[i] + derived.borrowed[i]
                p_queue = prob_no_forward(
                    derived.backlog[i], busy_for_i, cloud.service_rate, cloud.sla_bound
                )
                if state[i] < q_max[i] and p_queue > 0.0:
                    transitions.append(
                        (set_q(state, i, state[i] + 1), rate * p_queue)
                    )
                # Forwarding leaves the state unchanged (rate accounted
                # separately in the performance-parameter extraction).

            for i, cloud in enumerate(scenario):
                # Completion of an own request served locally.
                running = derived.own_running[i]
                if running > 0:
                    rate = running * cloud.service_rate
                    base = set_q(state, i, state[i] - 1)
                    if derived.backlog[i] > 0 or derived.lent[i] >= cloud.shared_vms:
                        transitions.append((base, rate))
                    else:
                        needy = [
                            j
                            for j in range(k)
                            if j != i and derived.backlog[j] > 0
                        ]
                        if needy:
                            backlogs = [derived.backlog[j] for j in needy]
                            best = max(backlogs)
                            tied = [
                                j for j, b in zip(needy, backlogs) if b == best
                            ]
                            for j in tied:
                                lent_state = bump_pair(
                                    set_q(base, j, base[j] - 1), j, i, +1
                                )
                                transitions.append((lent_state, rate / len(tied)))
                        else:
                            transitions.append((base, rate))

            for owner, host in pairs:
                count = state[k + pair_index[(owner, host)]]
                if count <= 0:
                    continue
                rate = count * scenario[host].service_rate
                released = bump_pair(state, owner, host, -1)
                if derived.backlog[host] > 0:
                    # Owner reclaims the VM for its own queue head; the
                    # decrement of lent[host] lets own_running grow, which
                    # the derived quantities capture, so releasing the pair
                    # is the whole transition.
                    transitions.append((released, rate))
                    continue
                needy = [
                    j for j in range(k) if j != host and derived.backlog[j] > 0
                ]
                if needy:
                    backlogs = [derived.backlog[j] for j in needy]
                    best = max(backlogs)
                    tied = [j for j, b in zip(needy, backlogs) if b == best]
                    for j in tied:
                        relent = bump_pair(
                            set_q(released, j, released[j] - 1), j, host, +1
                        )
                        transitions.append((relent, rate / len(tied)))
                else:
                    transitions.append((released, rate))

            return transitions

        return successors

    # ------------------------------------------------------------------ #
    # solution
    # ------------------------------------------------------------------ #

    def build(self, scenario: FederationScenario) -> tuple[StateSpace, CTMC]:
        """Explore the reachable space and assemble the generator."""
        k = len(scenario)
        if k < 1:
            raise ConfigurationError("scenario must contain at least one SC")
        q_max = tuple(self._q_max(scenario, i) for i in range(k))
        empty = tuple([0] * k + [0] * (k * (k - 1)))
        successors = self._successors(scenario, q_max)
        space = explore([empty], successors, max_states=self.max_states)
        ctmc = CTMC.from_successor_function(space, successors)
        return space, ctmc

    def evaluate(self, scenario: FederationScenario) -> list[PerformanceParams]:
        """Solve the exact chain and extract ``(Ibar, Obar, Pbar, rho)``."""
        space, ctmc = self.build(scenario)
        pi = ctmc.steady_state()
        k = len(scenario)
        lent = np.zeros((k, len(space)))
        borrowed = np.zeros((k, len(space)))
        busy = np.zeros((k, len(space)))
        forward = np.zeros((k, len(space)))
        for idx, state in enumerate(space):
            derived = self._derive(scenario, state)
            for i, cloud in enumerate(scenario):
                lent[i, idx] = derived.lent[i]
                borrowed[i, idx] = derived.borrowed[i]
                busy[i, idx] = derived.own_running[i] + derived.lent[i]
                if derived.free[i] > 0:
                    continue
                lender_exists = any(
                    j != i
                    and derived.free[j] > 0
                    and derived.lent[j] < scenario[j].shared_vms
                    for j in range(k)
                )
                if lender_exists:
                    continue
                busy_for_i = derived.own_running[i] + derived.borrowed[i]
                p_queue = prob_no_forward(
                    derived.backlog[i],
                    busy_for_i,
                    cloud.service_rate,
                    cloud.sla_bound,
                )
                forward[i, idx] = cloud.arrival_rate * (1.0 - p_queue)
        results = []
        for i, cloud in enumerate(scenario):
            results.append(
                PerformanceParams(
                    lent_mean=float(lent[i] @ pi),
                    borrowed_mean=float(borrowed[i] @ pi),
                    forward_rate=float(forward[i] @ pi),
                    utilization=float(busy[i] @ pi) / cloud.vms,
                )
            )
        return results
