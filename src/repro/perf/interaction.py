"""Interaction probabilities between levels of the approximate model.

Sect. III-C couples each per-SC chain ``M^i`` to its predecessor
``M^{i-1}`` through three "interaction probability vectors" — the
distribution of the group's shared-VM allocation ``(a_loc, a_rem)`` after
the inter-event period preceding an arrival, a local departure, or a
remote departure.  This module implements that coupling:

1. **Conditioning** (:func:`conditional_initials`): the steady state of
   ``M^{i-1}`` restricted to states whose total group borrowing ``T``
   matches the allocation implied by the current ``M^i`` state
   (``T == s_i + a_i``), renormalized; empty levels fall back to the
   nearest populated level.
2. **Transient evolution**: the conditioned distributions are pushed
   through ``exp(Q^{i-1} tau)`` for the mean inter-event time ``tau``
   (``1/lambda``, ``1/(L mu)``, or ``1/(o mu)``) by uniformization with
   Fox–Glynn weights — all conditioning levels and all horizons share one
   sweep of DTMC powers (:func:`transient_outcomes`).
3. **Owner split** (:func:`reduction_matrix`): ``M^{i-1}`` does not track
   which owner each borrowed VM belongs to, so the usage ``U = o + a`` of
   non-``(i-1)``-owned shared VMs is split between SC i's pool (``S_i``
   slots) and the rest of the federation hypergeometrically; VMs borrowed
   from SC ``i-1`` itself (``s``) always land on the ``a_rem`` side.  The
   group-backlog flag needed by transition cases C4/C5 is read off the
   predecessor state's queue.

The reduction from predecessor-state distributions to outcome
distributions is linear, so it is materialized once as a sparse matrix
and applied to every transient result.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.analysis import sanitize
from repro.exceptions import SolverError
from repro.markov.ctmc import CTMC
from repro.markov.fox_glynn import fox_glynn
from repro.markov.uniformization import uniformize

#: One outcome of the interaction coupling: the group holds ``a_loc`` of
#: the target SC's shared VMs and ``a_rem`` of everyone else's, and
#: ``backlog`` says whether the group still has queued requests.
Outcome = tuple[int, int, bool]


@dataclass(frozen=True)
class OutcomeTable:
    """Index of all interaction outcomes with positive probability."""

    outcomes: tuple[Outcome, ...]
    index: dict[Outcome, int]

    @classmethod
    def from_outcomes(cls, outcomes: set[Outcome]) -> "OutcomeTable":
        """Build a sorted, indexed table from an outcome set."""
        ordered = tuple(sorted(outcomes))
        return cls(outcomes=ordered, index={o: i for i, o in enumerate(ordered)})

    def __len__(self) -> int:
        return len(self.outcomes)


def _log_binomial(n: int, k: int) -> float:
    return math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)


def hypergeometric_pmf(draws: int, cap_loc: int, cap_rem: int) -> np.ndarray:
    """Return ``P[a_loc = x]`` for ``x = 0..min(draws, cap_loc)``.

    ``draws`` shared VMs are held by the group out of a pool of
    ``cap_loc + cap_rem`` slots; the split follows a hypergeometric law
    under the model's exchangeability assumption (every slot equally
    likely to be in use).
    """
    if draws > cap_loc + cap_rem:
        raise SolverError(
            f"group holds {draws} shared VMs but the pool has only "
            f"{cap_loc + cap_rem}"
        )
    if cap_loc == 0:
        return np.array([1.0])
    x_low = max(0, draws - cap_rem)
    x_high = min(cap_loc, draws)
    pmf = np.zeros(x_high + 1)
    log_denominator = _log_binomial(cap_loc + cap_rem, draws)
    for x in range(x_low, x_high + 1):
        log_p = (
            _log_binomial(cap_loc, x)
            + _log_binomial(cap_rem, draws - x)
            - log_denominator
        )
        pmf[x] = math.exp(log_p)
    total = pmf.sum()
    if not 0.999 <= total <= 1.001:  # pragma: no cover - sanity
        raise SolverError(f"hypergeometric pmf sums to {total}")
    return pmf / total


def reduction_matrix(
    usage: np.ndarray,
    own_lent: np.ndarray,
    backlog: np.ndarray,
    cap_loc: int,
    cap_rem: int,
) -> tuple[sp.csr_matrix, OutcomeTable]:
    """Build the linear map from predecessor-state distributions to outcomes.

    Args:
        usage: per-predecessor-state count of non-predecessor-owned shared
            VMs in use by the group (``U = o + a``).
        own_lent: per-state count of the predecessor's own VMs lent to the
            group (``s``) — these are owned by another SC from the target's
            viewpoint, so they contribute to ``a_rem`` deterministically.
        backlog: per-state group backlog counts (``> 0`` sets the flag).
        cap_loc: the target SC's shared pool size ``S_i``.
        cap_rem: the rest of the predecessor's pool, ``B_{i-1} - S_i``.

    Returns:
        ``(matrix, table)`` where ``matrix`` has shape
        ``(n_states, n_outcomes)`` and rows summing to 1.
    """
    n_states = len(usage)
    entries: dict[tuple[int, Outcome], float] = {}
    outcome_set: set[Outcome] = set()
    pmf_cache: dict[int, np.ndarray] = {}
    for j in range(n_states):
        u = int(usage[j])
        if u not in pmf_cache:
            pmf_cache[u] = hypergeometric_pmf(u, cap_loc, cap_rem)
        pmf = pmf_cache[u]
        flag = bool(backlog[j] > 0)
        extra_rem = int(own_lent[j])
        for a_loc, p in enumerate(pmf):
            if p <= 0.0:
                continue
            outcome = (a_loc, u - a_loc + extra_rem, flag)
            outcome_set.add(outcome)
            key = (j, outcome)
            entries[key] = entries.get(key, 0.0) + float(p)
    table = OutcomeTable.from_outcomes(outcome_set)
    rows = np.fromiter((j for j, _ in entries), dtype=np.int64, count=len(entries))
    cols = np.fromiter(
        (table.index[o] for _, o in entries), dtype=np.int64, count=len(entries)
    )
    vals = np.fromiter(entries.values(), dtype=float, count=len(entries))
    matrix = sp.coo_matrix(
        (vals, (rows, cols)), shape=(n_states, len(table))
    ).tocsr()
    return matrix, table


def conditional_initials(
    steady: np.ndarray, totals: np.ndarray, levels: range
) -> np.ndarray:
    """Condition a steady state on each total-borrowing level.

    Args:
        steady: the predecessor chain's stationary distribution.
        totals: per-state total group borrowing ``T = s + o + a``.
        levels: the conditioning values ``c`` required by the successor
            chain (``c = s_i + a_i`` over its states).

    Returns:
        A matrix of shape ``(len(levels), n_states)``; row ``c`` is the
        steady state conditioned on ``T == c`` (nearest populated level if
        that event has zero probability).
    """
    n = len(steady)
    populated: dict[int, np.ndarray] = {}
    for t in np.unique(totals):
        mask = totals == t
        mass = steady[mask].sum()
        if mass > 1e-300:
            row = np.zeros(n)
            row[mask] = steady[mask] / mass
            populated[int(t)] = row
    if not populated:
        raise SolverError("steady state has no populated borrowing level")
    available = np.array(sorted(populated))
    result = np.zeros((len(levels), n))
    for row_idx, c in enumerate(levels):
        nearest = int(available[np.abs(available - c).argmin()])
        result[row_idx] = populated[nearest]
    sanitize.check_distribution_rows(result, label="conditional-initials")
    return result


# hot-path: shared transient sweep behind every level's coupling terms
def transient_outcomes(
    ctmc: CTMC,
    initials: np.ndarray,
    reduction: sp.csr_matrix,
    horizons: list[float],
    epsilon: float = 1e-8,
) -> list[np.ndarray]:
    """Evolve all conditioned initials over all horizons, in outcome space.

    All horizons share one sweep of uniformized DTMC powers: at step ``k``
    the matrix ``X P^k`` is projected to outcome space once and added to
    every horizon whose Fox–Glynn window covers ``k``.

    Args:
        ctmc: the predecessor chain.
        initials: matrix (n_levels, n_states) of conditioned initials.
        reduction: the owner-split matrix from :func:`reduction_matrix`.
        horizons: mean inter-event times ``tau`` (all > 0).
        epsilon: Fox–Glynn truncation mass.

    Returns:
        One array of shape ``(n_levels, n_outcomes)`` per horizon, rows
        summing to 1.
    """
    dtmc, gamma = uniformize(ctmc)
    windows = [fox_glynn(gamma * tau, epsilon=epsilon) for tau in horizons]
    max_step = max(w.right for w in windows)
    matrix = dtmc.matrix
    accumulators = [
        np.zeros((initials.shape[0], reduction.shape[1])) for _ in horizons
    ]
    current = np.asarray(initials, dtype=float)
    for k in range(max_step + 1):
        projected = None
        for window, acc in zip(windows, accumulators):
            if window.left <= k <= window.right:
                if projected is None:
                    projected = current @ reduction
                acc += window.weights[k - window.left] * projected
        if k < max_step:
            current = current @ matrix
    for horizon, acc in zip(horizons, accumulators):
        row_sums = acc.sum(axis=1, keepdims=True)
        acc /= np.clip(row_sums, 1e-300, None)
        sanitize.check_distribution_rows(
            acc, label=f"interaction-outcomes[tau={horizon:g}]"
        )
    return accumulators
