"""The performance-parameter vector exchanged between models and market.

One :class:`PerformanceParams` per SC carries exactly the quantities the
paper's Eq. (1) cost function and Eq. (2) utility need.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class PerformanceParams:
    """Stationary performance parameters of one SC inside the federation.

    Attributes:
        lent_mean: ``Ibar_i`` — mean VMs of SC i in use by other SCs.
        borrowed_mean: ``Obar_i`` — mean VMs of other SCs in use by SC i.
        forward_rate: ``Pbar_i`` — mean rate of requests forwarded to the
            public cloud (requests per time unit).
        utilization: ``rho_i`` — mean fraction of SC i's own VMs busy
            (serving anyone, own customers or guests).
    """

    lent_mean: float
    borrowed_mean: float
    forward_rate: float
    utilization: float

    def __post_init__(self) -> None:
        for name in ("lent_mean", "borrowed_mean", "forward_rate", "utilization"):
            value = getattr(self, name)
            if value < -1e-9:
                raise ConfigurationError(f"{name} must be >= 0, got {value}")
        if self.utilization > 1.0 + 1e-9:
            raise ConfigurationError(
                f"utilization must be <= 1, got {self.utilization}"
            )

    @property
    def net_borrowed(self) -> float:
        """``Obar - Ibar``: net federation usage priced at ``C^G`` in Eq. (1)."""
        return self.borrowed_mean - self.lent_mean
