"""Generation-synchronous sharded evaluation of the hierarchical model.

:meth:`ApproximateModel.evaluate` historically parallelized over *target
rotations*: each worker rebuilt its rotation's full chain from level 1,
so a federation of ``K`` SCs cost ``K^2`` cold level builds even though
rotations share long prefixes (rotation ``t`` and rotation ``t'`` agree
on the first ``min(t, t')`` levels).  This module keeps the parallelism
but moves the unit of work down one layer, to a single *level build*:

1. Plan every rotation's chain up front as content keys
   (:meth:`ApproximateModel._chain_keys` — config, ordered spec prefix,
   pool size).
2. Walk the hierarchy one *generation* (level index) at a time.  Within
   a generation, deduplicate the rotations' keys, serve what the
   level-prefix LRU already holds, and partition only the distinct
   missing builds across the executor's workers — each worker owns a
   slice of the per-SC CTMC constructions and transient couplings for
   that generation.
3. Exchange the solved levels between generations through the ordered
   map interface (:func:`repro.obs.map_with_metrics`): results come back
   in task order, are published into a keyed level table, and the next
   generation's builds read their predecessor levels from that table.

Bit-identity to the serial walk is structural, not statistical: a level
build is a pure function of ``(solver config, rotated scenario prefix,
pool size, predecessor level)``, and two rotations with equal keys have
equal build inputs, so *which* rotation's scenario a worker receives
cannot change a single float.  The differential K-sweep
(:mod:`repro.analysis.differential`) asserts the resulting equilibrium
digests are byte-identical to the monolithic path on every commit.

The payoff is asymptotic, not just parallel: one sharded evaluate
performs the same ``~K^2/2`` distinct builds the memoized serial walk
does (instead of ``K^2`` cold worker builds), and the wall-clock divides
the distinct builds of each generation across the pool.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro import obs
from repro.perf.params import PerformanceParams

if TYPE_CHECKING:
    from repro.core.small_cloud import FederationScenario
    from repro.perf.approximate import ApproximateModel, _Level
    from repro.runtime.executor import Executor

def _build_level_task(
    task: "tuple[ApproximateModel, FederationScenario, int, _Level | None]",
) -> "_Level":
    """Build one hierarchy level (pure function of its task content)."""
    model, scenario, index, prev = task
    if index == 0:
        return model._build_first(scenario)
    assert prev is not None
    return model._build_level(scenario, index, prev)


def evaluate_sharded(
    model: "ApproximateModel",
    scenario: "FederationScenario",
    executor: "Executor",
) -> list[PerformanceParams]:
    """Evaluate all ``K`` rotations with level builds sharded per
    generation; returns exactly what the serial path returns.

    The caller (:meth:`ApproximateModel.evaluate`) guarantees ``K > 1``
    and ``executor.workers > 1``.
    """
    k = len(scenario)
    rotations = [
        scenario if i == k - 1 else scenario.rotated_to_target(i) for i in range(k)
    ]
    plans = [model._chain_keys(rotation) for rotation in rotations]
    model._ensure_auto_capacity(k)
    cache = model._level_cache
    worker = model._worker_clone()
    levels: "dict[tuple, _Level]" = {}
    for g in range(k):
        pending_keys: list[tuple] = []
        tasks: list[object] = []
        pending: set[tuple] = set()
        reused = 0
        for r in range(k):
            key = plans[r][g]
            if key in levels or key in pending:
                reused += 1
                continue
            cached = cache.get(key) if cache is not None else None
            if cached is not None:
                levels[key] = cached
                reused += 1
                continue
            prev = levels[plans[r][g - 1]] if g > 0 else None
            pending_keys.append(key)
            tasks.append((worker, rotations[r], g, prev))
            pending.add(key)
        if reused:
            obs.inc("perf.sharded.level_reused", reused)
        if not tasks:
            continue
        obs.inc("perf.sharded.level_built", len(tasks))
        with obs.span("perf.shard_generation", level=g, builds=len(tasks)):
            built = obs.map_with_metrics(executor, _build_level_task, tasks)
        for key, solved in zip(pending_keys, built):
            levels[key] = solved
            if cache is not None:
                cache.put(key, solved)
    return [model._params_from_level(levels[plans[r][k - 1]]) for r in range(k)]
