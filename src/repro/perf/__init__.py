"""Performance models of the SC federation (Sect. III).

Four interchangeable estimators of the per-SC performance parameters
``(Ibar, Obar, Pbar, rho)`` that feed the cost function (Eq. 1):

- :class:`~repro.perf.detailed.DetailedModel` — the exact CTMC ``M``
  of Sect. III-B (exponential in K; small federations only).
- :class:`~repro.perf.approximate.ApproximateModel` — the hierarchical
  chain ``M^1..M^K`` of Sect. III-C (linear in K).
- :class:`~repro.perf.pooled.PooledModel` — a fast fixed-point overflow
  approximation (this reproduction's addition, used for large market
  sweeps and as an ablation baseline).
- :class:`~repro.perf.simulation.SimulationModel` — an adapter over the
  discrete-event simulator (ground truth, stochastic).

Plus a budget-driven hybrid front (:class:`~repro.perf.auto.AutoModel`)
that picks detailed/approximate/pooled per query from a declared
:class:`~repro.perf.auto.ErrorBudget`, calibrated against the analytic
brackets in :mod:`repro.perf.bounds`.
"""

from repro.perf.approximate import ApproximateModel
from repro.perf.auto import AutoModel, ErrorBudget
from repro.perf.bounds import ForwardingBounds, forwarding_bounds, pooling_gain_captured
from repro.perf.base import PerformanceModel
from repro.perf.detailed import DetailedModel
from repro.perf.params import PerformanceParams
from repro.perf.pooled import PooledModel
from repro.perf.simulation import SimulationModel

__all__ = [
    "ApproximateModel",
    "AutoModel",
    "ErrorBudget",
    "ForwardingBounds",
    "forwarding_bounds",
    "pooling_gain_captured",
    "DetailedModel",
    "PerformanceModel",
    "PerformanceParams",
    "PooledModel",
    "SimulationModel",
]
