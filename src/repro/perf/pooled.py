"""Fast fixed-point ("pooled") performance approximation.

This is an addition of the reproduction (not in the paper): a cheap
estimator of ``(Ibar, Obar, Pbar, rho)`` used where the full hierarchical
model of Sect. III-C is too expensive (large market sweeps) and as an
ablation baseline against it.

Construction.  Each SC i is modeled by a two-dimensional birth–death-like
chain over ``(q, o)`` — own requests in the local system and VMs borrowed
from the shared pool — exactly the shape of the paper's ``M^1``.  The
federation coupling is collapsed into three scalars per SC, solved by
damped fixed-point iteration:

- ``ell_i``  — the expected number of VMs SC i lends (reduces its local
  capacity to ``N_i - ell_i``; fractional values are allowed, entering
  through the service/availability rates),
- ``beta_i`` — the probability that some other SC can lend a VM at an
  arrival epoch of SC i (thins the borrow transition),
- supply weights — expected idle-and-sharable VMs of each SC, used to
  split the total borrowing demand into per-SC lending ``ell``.

The fixed point conserves flow: ``sum_i Obar_i = sum_j Ibar_j`` up to the
iteration tolerance.
"""

from __future__ import annotations

import numpy as np

from repro._validation import check_in_range, check_positive, check_positive_int
from repro.core.small_cloud import FederationScenario, SmallCloud
from repro.exceptions import ConvergenceError
from repro.markov.state_space import StateSpace
from repro.perf.base import PerformanceModel
from repro.perf.params import PerformanceParams
from repro.queueing.forwarding import queue_truncation_level
from repro.queueing.sla import prob_no_forward


def _fractional_prob_no_forward(
    waiting: float, busy: float, service_rate: float, sla_bound: float
) -> float:
    """``P^NF`` allowing fractional waiting and busy-server counts.

    Bilinear interpolation of the integer-argument tail.  Continuity in
    both arguments matters: the fixed point perturbs the effective
    capacity continuously, and any jump in the chain's rates as capacity
    crosses an integer turns the coupling map discontinuous (producing
    limit cycles instead of a fixed point).
    """
    if waiting < 0.0:
        return 1.0
    if busy <= 0.0:
        return 0.0

    def at_busy(b: int) -> float:
        w_lo = int(np.floor(waiting))
        w_hi = int(np.ceil(waiting))
        lo = prob_no_forward(w_lo, b, service_rate, sla_bound)
        if w_hi == w_lo:
            return lo
        hi = prob_no_forward(w_hi, b, service_rate, sla_bound)
        frac = waiting - w_lo
        return (1.0 - frac) * lo + frac * hi

    b_lo = int(np.floor(busy))
    b_hi = int(np.ceil(busy))
    low_val = at_busy(b_lo)
    if b_hi == b_lo:
        return low_val
    high_val = at_busy(b_hi)
    frac = busy - b_lo
    return (1.0 - frac) * low_val + frac * high_val


class _CloudChain:
    """The per-SC (q, o) chain solved inside each fixed-point sweep."""

    def __init__(self, cloud: SmallCloud, pool_size: int, tail_epsilon: float) -> None:
        self.cloud = cloud
        self.pool_size = pool_size
        capacity = cloud.vms + pool_size
        self.q_max = queue_truncation_level(
            max(capacity, 1), cloud.service_rate, cloud.sla_bound, tail_epsilon
        )
        states = [
            (q, o) for q in range(self.q_max + 1) for o in range(pool_size + 1)
        ]
        self.space = StateSpace(states)

    def solve(self, ell: float, beta: float) -> dict[str, float]:
        """Solve the chain for given lending level and pool availability.

        The (q, o) grid is rectangular, so state indices are computed
        arithmetically and the generator is assembled straight into COO
        arrays — this method runs once per SC per fixed-point iteration
        and dominates the pooled model's cost.
        """
        cloud = self.cloud
        mu = cloud.service_rate
        lam = cloud.arrival_rate
        pool = self.pool_size
        width = pool + 1
        n_states = (self.q_max + 1) * width
        capacity = cloud.vms - ell  # fractional effective own capacity
        rows: list[int] = []
        cols: list[int] = []
        vals: list[float] = []
        forward_flow = np.zeros(n_states)
        pnf_cache: dict[float, float] = {}

        def add(src_idx: int, dst_idx: int, rate: float) -> None:
            rows.append(src_idx)
            cols.append(dst_idx)
            vals.append(rate)

        for q in range(self.q_max + 1):
            own_running = q if q < capacity else capacity
            waiting = q - capacity
            if waiting < 0.0:
                waiting = 0.0
            w_local = capacity - q
            if w_local > 1.0:
                w_local = 1.0
            elif w_local < 0.0:
                w_local = 0.0
            saturated = 1.0 - w_local
            for o in range(width):
                idx = q * width + o
                # Arrivals (split continuously at the fractional capacity).
                if q + 1 <= self.q_max:
                    if w_local > 0.0:
                        add(idx, idx + width, lam * w_local)
                    if saturated > 0.0:
                        if o < pool and beta > 0.0:
                            add(idx, idx + 1, lam * saturated * beta)
                        blocked = saturated * (1.0 if o >= pool else 1.0 - beta)
                        if blocked > 0.0:
                            busy = own_running + o
                            key = waiting * 4096.0 + busy
                            p_queue = pnf_cache.get(key)
                            if p_queue is None:
                                p_queue = _fractional_prob_no_forward(
                                    waiting, busy, mu, cloud.sla_bound
                                )
                                pnf_cache[key] = p_queue
                            if p_queue > 0.0:
                                add(idx, idx + width, lam * blocked * p_queue)
                            forward_flow[idx] = lam * blocked * (1.0 - p_queue)
                else:
                    forward_flow[idx] = lam
                # Local departures.
                if own_running > 0:
                    add(idx, idx - width, own_running * mu)
                # Remote departures (continuous keep/return split).
                if o > 0:
                    w_keep = waiting if waiting < 1.0 else 1.0
                    if w_keep > 0.0:
                        add(idx, idx - width, o * mu * w_keep)
                    if w_keep < 1.0:
                        add(idx, idx - 1, o * mu * (1.0 - w_keep))

        import scipy.sparse as sp

        q_matrix = sp.coo_matrix(
            (vals, (rows, cols)), shape=(n_states, n_states)
        ).tocsr()
        q_matrix = q_matrix - sp.diags(
            np.asarray(q_matrix.sum(axis=1)).ravel(), format="csr"
        )
        from repro.markov.solvers import steady_state

        pi = steady_state(q_matrix)

        borrowed = 0.0
        busy_own = 0.0
        idle_sharable = 0.0
        free_prob = 0.0
        forward_rate = float(forward_flow @ pi)
        share_room = cloud.shared_vms - ell
        if share_room < 0.0:
            share_room = 0.0
        for q in range(self.q_max + 1):
            own_running = q if q < capacity else capacity
            idle = capacity - q
            if idle < 0.0:
                idle = 0.0
            sharable = idle if idle < share_room else share_room
            free_frac = idle if idle < 1.0 else 1.0
            base = q * width
            for o in range(width):
                p = pi[base + o]
                borrowed += o * p
                busy_own += own_running * p
                idle_sharable += sharable * p
                free_prob += free_frac * p
        headroom = share_room if share_room < 1.0 else 1.0
        return {
            "borrowed": borrowed,
            "busy_own": busy_own,
            "idle_sharable": idle_sharable,
            "forward_rate": forward_rate,
            "avail_prob": free_prob * headroom,
        }


class PooledModel(PerformanceModel):
    """Fixed-point overflow approximation of the federation.

    Args:
        damping: fixed-point damping factor in (0, 1]; smaller is safer.
        tolerance: convergence threshold on the lending vector.
        max_iterations: iteration budget.
        tail_epsilon: queue truncation tolerance.
    """

    def __init__(
        self,
        damping: float = 0.8,
        tolerance: float = 1e-5,
        max_iterations: int = 300,
        tail_epsilon: float = 1e-9,
    ) -> None:
        self.damping = check_in_range(damping, "damping", 1e-6, 1.0)
        self.tolerance = check_positive(tolerance, "tolerance")
        self.max_iterations = check_positive_int(max_iterations, "max_iterations")
        self.tail_epsilon = check_positive(tail_epsilon, "tail_epsilon")

    def evaluate(self, scenario: FederationScenario) -> list[PerformanceParams]:
        """Solve the coupling fixed point and project per-SC parameters."""
        k = len(scenario)
        shares = np.array([c.shared_vms for c in scenario], dtype=float)
        if shares.sum() == 0.0 or k == 1:
            return self._no_sharing(scenario)
        chains = [
            _CloudChain(
                scenario[i],
                pool_size=scenario.shared_by_others(i),
                tail_epsilon=self.tail_epsilon,
            )
            for i in range(k)
        ]
        ell, beta = self._fixed_point(chains, shares)
        stats = [chains[i].solve(ell[i], beta[i]) for i in range(k)]
        results = []
        for i, cloud in enumerate(scenario):
            busy = stats[i]["busy_own"] + ell[i]
            results.append(
                PerformanceParams(
                    lent_mean=float(ell[i]),
                    borrowed_mean=float(stats[i]["borrowed"]),
                    forward_rate=float(stats[i]["forward_rate"]),
                    utilization=min(busy / cloud.vms, 1.0),
                )
            )
        return results

    def _apply_map(
        self, chains: list[_CloudChain], shares: np.ndarray, ell: np.ndarray, beta: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """One sweep of the coupling map ``(ell, beta) -> (ell', beta')``."""
        k = len(chains)
        stats = [chains[i].solve(ell[i], beta[i]) for i in range(k)]
        borrowed = np.array([s["borrowed"] for s in stats])
        supply = np.array([s["idle_sharable"] for s in stats])
        # Split total borrowing demand into per-SC lending proportional to
        # each lender's expected idle-and-sharable capacity, capped at the
        # share limits.
        new_ell = np.zeros(k)
        for i in range(k):
            other = np.array([supply[j] if j != i else 0.0 for j in range(k)])
            total_other = other.sum()
            if total_other <= 0.0:
                continue
            new_ell += borrowed[i] * other / total_other
        new_ell = np.minimum(new_ell, shares)
        new_beta = np.array(
            [
                1.0
                - np.prod(
                    [1.0 - stats[j]["avail_prob"] for j in range(k) if j != i]
                )
                for i in range(k)
            ]
        )
        return new_ell, new_beta

    def _fixed_point(
        self, chains: list[_CloudChain], shares: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Solve the coupling fixed point.

        Damped Picard iteration handles the common case; when the raw map
        cycles (which happens for a few asymmetric share vectors), the
        final iterate seeds a Newton-Krylov root solve of the residual
        ``map(x) - x``, which lands on the fixed point at the cycle's
        center.
        """
        k = len(chains)
        ell = np.zeros(k)
        beta = np.ones(k) * np.where(shares.sum() - shares > 0, 1.0, 0.0)
        damping = self.damping
        best_step = np.inf
        stalled = 0
        for _ in range(self.max_iterations):
            new_ell, new_beta = self._apply_map(chains, shares, ell, beta)
            step = np.abs(new_ell - ell).max(initial=0.0) + np.abs(
                new_beta - beta
            ).max(initial=0.0)
            ell = (1.0 - damping) * ell + damping * new_ell
            beta = (1.0 - damping) * beta + damping * new_beta
            if step < self.tolerance:
                return ell, beta
            # The raw map can enter small limit cycles; shrinking the step
            # turns the cycle into a spiral toward its center.
            if step < best_step * 0.95:
                best_step = min(step, best_step)
                stalled = 0
            else:
                stalled += 1
                if stalled >= 5:
                    damping = max(damping * 0.5, 0.05)
                    stalled = 0
        return self._root_solve(chains, shares, ell, beta)

    def _root_solve(
        self,
        chains: list[_CloudChain],
        shares: np.ndarray,
        ell: np.ndarray,
        beta: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Fallback: solve ``map(x) = x`` with a quasi-Newton root finder."""
        import scipy.optimize

        k = len(chains)

        def clip(x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
            e = np.clip(x[:k], 0.0, shares)
            b = np.clip(x[k:], 0.0, 1.0)
            return e, b

        def residual(x: np.ndarray) -> np.ndarray:
            e, b = clip(x)
            new_e, new_b = self._apply_map(chains, shares, e, b)
            return np.concatenate([new_e - e, new_b - b])

        start = np.concatenate([ell, beta])
        solution = scipy.optimize.root(
            residual, start, method="df-sane", options={"maxfev": 400, "fatol": self.tolerance}
        )
        res_norm = float(np.abs(residual(solution.x)).max())
        if res_norm > max(self.tolerance * 100, 1e-4):
            raise ConvergenceError(
                "pooled model fixed point did not converge "
                f"(residual {res_norm:.2e} after root fallback)"
            )
        return clip(solution.x)

    def _no_sharing(self, scenario: FederationScenario) -> list[PerformanceParams]:
        from repro.queueing.forwarding import NoSharingModel

        results = []
        for cloud in scenario:
            model = NoSharingModel(
                cloud.vms,
                cloud.arrival_rate,
                cloud.service_rate,
                cloud.sla_bound,
                tail_epsilon=self.tail_epsilon,
            )
            results.append(
                PerformanceParams(
                    lent_mean=0.0,
                    borrowed_mean=0.0,
                    forward_rate=model.forward_rate,
                    utilization=model.utilization,
                )
            )
        return results
