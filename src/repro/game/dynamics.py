"""Sequential (Gauss–Seidel) best-response dynamics.

Algorithm 1 updates all SCs *simultaneously* from the previous round's
profile.  The sequential variant lets each SC respond to the freshest
information — SCs move one at a time, each seeing the decisions already
made this round.  Sequential dynamics cannot cycle between two profiles
the way simultaneous ones can (each move weakly improves the mover's
utility against the current profile), so this is both a robustness
fallback and an ablation for the convergence benchmark.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro import obs
from repro._validation import check_positive_int
from repro.exceptions import GameError
from repro.game.best_response import BestResponder
from repro.game.repeated_game import GameResult


class SequentialGame:
    """Gauss–Seidel best-response runner with the Algorithm 1 result type.

    Args:
        responder: the per-SC best-response engine.
        max_rounds: full sweeps over all SCs before giving up.
    """

    def __init__(self, responder: BestResponder, max_rounds: int = 200) -> None:
        self.responder = responder
        self.max_rounds = check_positive_int(max_rounds, "max_rounds")

    def run(self, initial: Sequence[int] | None = None) -> GameResult:
        """Sweep SCs in order until a full sweep changes nothing."""
        evaluator = self.responder.evaluator
        k = len(evaluator.scenario)
        if initial is None:
            profile = [0] * k
        else:
            if len(initial) != k:
                raise GameError(f"initial profile must have {k} entries")
            profile = [int(s) for s in initial]
        start_evals = evaluator.total_evaluations
        history: list[tuple[int, ...]] = [tuple(profile)]

        for round_number in range(1, self.max_rounds + 1):
            with obs.span("game.round", round=round_number) as round_span:
                changed = False
                deltas = 0
                for i in range(k):
                    best, _utility = self.responder.respond(profile, i)
                    if best != profile[i]:
                        profile[i] = best
                        changed = True
                        deltas += 1
                round_span.set(changed=deltas)
                obs.inc("game.profile_changes", deltas)
            history.append(tuple(profile))
            if not changed:
                return GameResult(
                    equilibrium=tuple(profile),
                    utilities=tuple(evaluator.utilities(profile)),
                    iterations=round_number,
                    converged=True,
                    cycled=False,
                    history=tuple(history),
                    model_evaluations=evaluator.total_evaluations - start_evals,
                )

        return GameResult(
            equilibrium=tuple(profile),
            utilities=tuple(evaluator.utilities(profile)),
            iterations=self.max_rounds,
            converged=False,
            cycled=False,
            history=tuple(history),
            model_evaluations=evaluator.total_evaluations - start_evals,
        )
