"""Tabu search over a discrete one-dimensional strategy set.

The paper (Sect. IV-B) uses Tabu search as its discrete substitute for a
Tâtonnement process: each SC searches its own sharing values for a best
response without gradients.  This implementation is the classic
short-term-memory variant: from the current point, evaluate the
neighborhood (all values within ``distance`` grid steps), move to the
best non-tabu neighbor (aspiration: a tabu move is allowed if it beats
the best value seen), and remember visited points for ``tenure`` moves.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable, Sequence
from typing import TYPE_CHECKING

from repro._validation import check_positive_int
from repro import obs
from repro.exceptions import GameError

if TYPE_CHECKING:
    from repro.runtime.executor import Executor


class TabuSearch:
    """One-dimensional Tabu search.

    Args:
        distance: neighborhood radius in *grid positions* (the paper's
            "search distance").
        tenure: how many moves a visited point stays tabu.
        max_moves: iteration budget per :meth:`search` call.
    """

    def __init__(self, distance: int = 2, tenure: int = 5, max_moves: int = 100) -> None:
        self.distance = check_positive_int(distance, "distance")
        self.tenure = check_positive_int(tenure, "tenure")
        self.max_moves = check_positive_int(max_moves, "max_moves")

    def search(
        self,
        candidates: Sequence[int],
        objective: Callable[[int], float],
        start: int | None = None,
        executor: "Executor | None" = None,
        scorer: "Callable[[list[int]], list[float]] | None" = None,
    ) -> tuple[int, float, int]:
        """Maximize ``objective`` over ``candidates``.

        Args:
            candidates: the (sorted or unsorted) strategy values.
            objective: maps a value to its utility.
            start: starting value (defaults to the first candidate).
            executor: optional executor used to score the not-yet-cached
                part of each neighborhood concurrently.  The serial path
                scores the whole neighborhood anyway, so concurrent
                scoring changes neither the trajectory nor the
                evaluation count — ``objective`` must simply be safe to
                call from the executor's workers (thread executors need a
                thread-safe objective; process executors fall back to
                serial for non-picklable closures).
            scorer: optional batch twin of ``objective``: maps a list of
                candidate values to their utilities, one call per
                neighborhood.  When provided it replaces the
                executor-mapped closure during prefetch — the caller can
                hand in a picklable task pipeline (the best responder
                does), which is what lets process pools score
                neighborhoods without the closure fallback.  The scorer
                must return exactly what ``objective`` would, in order.

        Returns:
            ``(best_value, best_objective, evaluations)``.
        """
        if not candidates:
            raise GameError("tabu search needs a non-empty candidate set")
        ordered = sorted(set(int(c) for c in candidates))
        positions = {value: idx for idx, value in enumerate(ordered)}
        if start is None:
            current_idx = 0
        else:
            if int(start) not in positions:
                # Snap to the nearest candidate.
                current_idx = min(
                    range(len(ordered)), key=lambda i: abs(ordered[i] - int(start))
                )
            else:
                current_idx = positions[int(start)]

        evaluations = 0
        value_cache: dict[int, float] = {}

        def evaluate(idx: int) -> float:
            nonlocal evaluations
            value = ordered[idx]
            if value not in value_cache:
                value_cache[value] = objective(value)
                evaluations += 1
            return value_cache[value]

        def prefetch(indices: list[int]) -> None:
            # Score the uncached slice of a neighborhood in parallel; the
            # results land in the cache, so the serial scoring loop below
            # finds every value already computed.
            nonlocal evaluations
            missing = sorted(
                {ordered[idx] for idx in indices if ordered[idx] not in value_cache}
            )
            if scorer is not None:
                if not missing:
                    return
                for value, result in zip(missing, scorer(missing)):
                    if value not in value_cache:
                        value_cache[value] = result
                        evaluations += 1
                return
            if executor is None or executor.workers <= 1 or len(missing) <= 1:
                return
            for value, result in zip(missing, executor.map(objective, missing)):
                if value not in value_cache:
                    value_cache[value] = result
                    evaluations += 1

        best_idx = current_idx
        best_obj = evaluate(current_idx)
        tabu: deque[int] = deque(maxlen=self.tenure)
        tabu.append(current_idx)

        moves = 0
        for _ in range(self.max_moves):
            neighborhood = [
                idx
                for idx in range(
                    max(0, current_idx - self.distance),
                    min(len(ordered), current_idx + self.distance + 1),
                )
                if idx != current_idx
            ]
            if not neighborhood:
                break
            prefetch(neighborhood)
            scored = [(evaluate(idx), idx) for idx in neighborhood]
            scored.sort(key=lambda pair: (-pair[0], pair[1]))
            moved = False
            for obj, idx in scored:
                if idx in tabu and obj <= best_obj:
                    continue  # tabu and fails the aspiration criterion
                current_idx = idx
                tabu.append(idx)
                if obj > best_obj:
                    best_obj = obj
                    best_idx = idx
                moved = True
                moves += 1
                break
            if not moved:
                break  # whole neighborhood tabu and non-improving
            # Termination: if the neighborhood of the best point has been
            # fully explored without improvement, further moves only cycle.
            if len(value_cache) == len(ordered):
                break

        obs.inc("game.tabu.searches")
        obs.inc("game.tabu.moves", moves)
        obs.inc("game.tabu.evaluations", evaluations)
        return ordered[best_idx], best_obj, evaluations
