"""The non-cooperative sharing game (Sect. IV-B).

- :mod:`repro.game.strategy` — per-SC strategy spaces (how many VMs to
  share).
- :mod:`repro.game.tabu` — the Tabu-search heuristic the paper uses for
  best responses over discrete strategy sets.
- :mod:`repro.game.best_response` — utility-maximizing responses, by
  exhaustive search or Tabu search.
- :mod:`repro.game.repeated_game` — Algorithm 1: the repeated
  best-response dynamic, run to an empirical pure-strategy equilibrium.
- :mod:`repro.game.equilibrium` — Nash-equilibrium verification.
- :mod:`repro.game.fictitious` — a fictitious-play variant (best response
  to the empirical average of past opponent play).
"""

from repro.game.best_response import BestResponder
from repro.game.dynamics import SequentialGame
from repro.game.equilibrium import is_nash_equilibrium
from repro.game.fictitious import FictitiousPlay
from repro.game.repeated_game import GameResult, RepeatedGame
from repro.game.strategy import full_strategy_spaces, strategy_space
from repro.game.tabu import TabuSearch

__all__ = [
    "BestResponder",
    "SequentialGame",
    "FictitiousPlay",
    "GameResult",
    "RepeatedGame",
    "TabuSearch",
    "full_strategy_spaces",
    "is_nash_equilibrium",
    "strategy_space",
]
