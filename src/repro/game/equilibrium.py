"""Pure-strategy Nash-equilibrium verification.

Used both as a post-condition on game outcomes and as the property tested
by the suite's equilibrium invariants: at an equilibrium, no SC can raise
its utility by unilaterally changing its sharing decision.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.market.evaluator import UtilityEvaluator

_TOLERANCE = 1e-9


def is_nash_equilibrium(
    evaluator: UtilityEvaluator,
    profile: Sequence[int],
    strategy_spaces: Sequence[Sequence[int]],
    tolerance: float = _TOLERANCE,
) -> bool:
    """Check that ``profile`` is a pure-strategy Nash equilibrium.

    Args:
        evaluator: the market evaluator.
        profile: the candidate equilibrium.
        strategy_spaces: per-SC deviation candidates.
        tolerance: a deviation must improve utility by more than this to
            count (guards against solver noise).
    """
    profile = [int(s) for s in profile]
    for i, space in enumerate(strategy_spaces):
        current_utility = evaluator.utility(profile, i)
        original = profile[i]
        for candidate in space:
            if candidate == original:
                continue
            profile[i] = candidate
            deviated = evaluator.utility(profile, i)
            profile[i] = original
            if deviated > current_utility + tolerance:
                return False
    return True


def best_deviation(
    evaluator: UtilityEvaluator,
    profile: Sequence[int],
    strategy_spaces: Sequence[Sequence[int]],
) -> tuple[int, int, float] | None:
    """Return the most profitable unilateral deviation, if any.

    Returns:
        ``(sc_index, new_share, utility_gain)`` for the best deviation, or
        None when the profile is an equilibrium.
    """
    profile = [int(s) for s in profile]
    best: tuple[int, int, float] | None = None
    for i, space in enumerate(strategy_spaces):
        current_utility = evaluator.utility(profile, i)
        original = profile[i]
        for candidate in space:
            if candidate == original:
                continue
            profile[i] = candidate
            gain = evaluator.utility(profile, i) - current_utility
            profile[i] = original
            if gain > _TOLERANCE and (best is None or gain > best[2]):
                best = (i, candidate, gain)
    return best
