"""Fictitious play for the sharing game.

The paper's Algorithm 1 "adapts the concept of fictitious play" by
responding to observed past decisions.  This module implements the
textbook version (Brown 1951) as a comparison dynamic: each SC best
responds to the *empirical average* of every opponent's past sharing
decisions (rounded to the nearest feasible value), rather than only to
the previous round.  Time-averaging damps oscillations, so fictitious
play can settle games where plain best-response dynamics cycle — one of
the ablations in the benchmark suite.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro._validation import check_positive_int
from repro.exceptions import GameError
from repro.game.best_response import BestResponder
from repro.game.repeated_game import GameResult


class FictitiousPlay:
    """Fictitious-play runner with the same result type as Algorithm 1.

    Args:
        responder: the per-SC best-response engine.
        max_rounds: round budget.
        settle_rounds: the dynamic stops once the played profile has been
            identical for this many consecutive rounds.
    """

    def __init__(
        self,
        responder: BestResponder,
        max_rounds: int = 300,
        settle_rounds: int = 3,
    ) -> None:
        self.responder = responder
        self.max_rounds = check_positive_int(max_rounds, "max_rounds")
        self.settle_rounds = check_positive_int(settle_rounds, "settle_rounds")

    def _nearest(self, index: int, value: float) -> int:
        space = self.responder.strategy_spaces[index]
        return min(space, key=lambda s: (abs(s - value), s))

    def run(self, initial: Sequence[int] | None = None) -> GameResult:
        """Play fictitious play from ``initial`` (default: share nothing)."""
        evaluator = self.responder.evaluator
        k = len(evaluator.scenario)
        if initial is None:
            profile = [0] * k
        else:
            if len(initial) != k:
                raise GameError(f"initial profile must have {k} entries")
            profile = [int(s) for s in initial]
        start_evals = evaluator.total_evaluations
        sums = np.array(profile, dtype=float)
        plays = 1
        history: list[tuple[int, ...]] = [tuple(profile)]
        stable = 0

        for round_number in range(1, self.max_rounds + 1):
            beliefs = sums / plays
            belief_profile = [self._nearest(i, beliefs[i]) for i in range(k)]
            next_profile = []
            for i in range(k):
                view = list(belief_profile)
                view[i] = profile[i]
                next_profile.append(self.responder.respond(view, i)[0])
            next_profile = tuple(next_profile)
            history.append(next_profile)
            sums += np.array(next_profile, dtype=float)
            plays += 1
            if next_profile == tuple(profile):
                stable += 1
                if stable >= self.settle_rounds:
                    return GameResult(
                        equilibrium=next_profile,
                        utilities=tuple(evaluator.utilities(next_profile)),
                        iterations=round_number,
                        converged=True,
                        cycled=False,
                        history=tuple(history),
                        model_evaluations=evaluator.total_evaluations - start_evals,
                    )
            else:
                stable = 0
            profile = list(next_profile)

        final = tuple(profile)
        return GameResult(
            equilibrium=final,
            utilities=tuple(evaluator.utilities(final)),
            iterations=self.max_rounds,
            converged=False,
            cycled=False,
            history=tuple(history),
            model_evaluations=evaluator.total_evaluations - start_evals,
        )
