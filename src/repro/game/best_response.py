"""Best responses in the sharing game.

A best response for SC i fixes every other SC's sharing decision and
maximizes SC i's utility (Eq. 2) over its own strategy space.  Two search
strategies are provided:

- ``exhaustive`` — evaluate every candidate (exact; fine for small SCs),
- ``tabu`` — the paper's Tabu-search heuristic (fewer evaluations on
  large strategy spaces; may return a local optimum, which the paper
  mitigates by restarting from different initial points).

Ties are broken toward the *current* decision first (so the dynamics
settle instead of oscillating between equivalent responses) and then
toward sharing less.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from typing import TYPE_CHECKING

from repro import obs
from repro.exceptions import GameError
from repro.game.tabu import TabuSearch
from repro.market.evaluator import UtilityEvaluator

if TYPE_CHECKING:
    from repro.perf.params import PerformanceParams
    from repro.runtime.executor import Executor

_TIE_TOLERANCE = 1e-12


def _score_trial_task(
    task: "tuple[UtilityEvaluator, tuple[int, ...], int]",
) -> "tuple[float, PerformanceParams | None]":
    """Score one candidate sharing vector for one SC.

    Module-level (not a closure) so process executors can pickle it: the
    evaluator ships with its solved caches but without locks or pending
    tables, and the model solve is a pure function of the trial vector,
    so a worker returns exactly the floats a serial scan would.  The
    solved parameters ride back with the utility so the parent can seed
    its own cache (:meth:`UtilityEvaluator.seed_target`) instead of
    re-solving the winning candidate at move time.
    """
    evaluator, trial, index = task
    value = evaluator.utility(trial, index, deviation=index)
    params = (
        evaluator.params_target(trial, index, deviation=index)
        if trial[index] != 0
        else None
    )
    return value, params


class BestResponder:
    """Computes per-SC best responses through a :class:`UtilityEvaluator`.

    Args:
        evaluator: the caching cost/utility evaluator.
        strategy_spaces: per-SC candidate sharing values.
        method: ``'exhaustive'`` or ``'tabu'``.
        tabu: optional configured :class:`TabuSearch` (defaults match the
            paper's small search distance).
        executor: optional executor used to score candidate sharing
            values concurrently (the exhaustive scan scores its whole
            space at once; Tabu scores each neighborhood).  Scoring is
            process-safe: parallel batches route through a picklable
            module-level task instead of a closure, so process pools
            genuinely fan out (they used to fall back to serial) and
            thread pools share the evaluator's single-flight caches.
            Either way results are identical to a serial scan — the
            model solve is a pure function of the trial vector.
    """

    def __init__(
        self,
        evaluator: UtilityEvaluator,
        strategy_spaces: Sequence[Sequence[int]],
        method: str = "exhaustive",
        tabu: TabuSearch | None = None,
        executor: "Executor | None" = None,
    ) -> None:
        if method not in ("exhaustive", "tabu"):
            raise GameError(f"unknown best-response method {method!r}")
        if len(strategy_spaces) != len(evaluator.scenario):
            raise GameError("one strategy space per SC is required")
        self.evaluator = evaluator
        self.strategy_spaces = [list(space) for space in strategy_spaces]
        self.method = method
        self.tabu = tabu if tabu is not None else TabuSearch()
        self.executor = executor
        # Metric name built once here: respond() is hot, and per-call
        # string concatenation formats eagerly even with metrics off.
        self._respond_metric = "game.best_response." + method

    def respond(self, sharing: Sequence[int], index: int) -> tuple[int, float]:
        """Best sharing value for SC ``index`` given the profile ``sharing``.

        Returns:
            ``(best_share, best_utility)``.
        """
        profile = list(int(s) for s in sharing)
        current = profile[index]

        def objective(candidate: int) -> float:
            trial = list(profile)
            trial[index] = candidate
            return self.evaluator.utility(trial, index, deviation=index)

        with obs.span("game.respond", sc=index, method=self.method):
            obs.inc(self._respond_metric)
            if self.method == "exhaustive":
                return self._exhaustive(objective, index, current, profile)
            best, best_obj, _evals = self.tabu.search(
                self.strategy_spaces[index],
                objective,
                start=current,
                executor=self.executor,
                scorer=self._batch_scorer(profile, index),
            )
            # Tie-break toward the incumbent: keep the current decision
            # if it is as good as the search result.
            if best != current and current in self.strategy_spaces[index]:
                if objective(current) >= best_obj - _TIE_TOLERANCE:
                    return current, objective(current)
            return best, best_obj

    def _batch_scorer(
        self, profile: list[int], index: int
    ) -> Callable[[list[int]], list[float]]:
        """A neighborhood scorer over candidate sharing values for SC
        ``index``, deviating from ``profile``.

        Serial (or single-candidate) batches score inline.  Parallel
        batches go through the picklable :func:`_score_trial_task`, which
        works on *every* executor kind: thread workers share this
        evaluator (single-flight dedup keeps counts serial-equal), while
        process workers solve on a shipped copy and the solved parameters
        are seeded back into the parent cache.  The historical process
        behavior was a silent serial fallback — the closure objective was
        unpicklable — so process-backed neighborhood scoring is where the
        per-Tabu-move parallelism actually comes from.
        """
        executor = self.executor

        def score(values: list[int]) -> list[float]:
            trials = []
            for value in values:
                trial = list(profile)
                trial[index] = int(value)
                trials.append(trial)
            if executor is None or executor.workers <= 1 or len(trials) <= 1:
                return [
                    self.evaluator.utility(trial, index, deviation=index)
                    for trial in trials
                ]
            tasks = [(self.evaluator, tuple(trial), index) for trial in trials]
            results = obs.map_with_metrics(executor, _score_trial_task, tasks)
            scored: list[float] = []
            for trial, (value, params) in zip(trials, results):
                if params is not None:
                    self.evaluator.seed_target(trial, index, params)
                scored.append(value)
            return scored

        return score

    def _exhaustive(
        self,
        objective: Callable[[int], float],
        index: int,
        current: int,
        profile: list[int],
    ) -> tuple[int, float]:
        candidates = self.strategy_spaces[index]
        if self.executor is not None and self.executor.workers > 1 and len(candidates) > 1:
            values = self._batch_scorer(profile, index)([int(c) for c in candidates])
        else:
            values = [objective(candidate) for candidate in candidates]
        best_share: int | None = None
        best_utility = -1.0
        for candidate, value in zip(candidates, values):
            if value > best_utility + _TIE_TOLERANCE:
                best_utility = value
                best_share = candidate
            elif value >= best_utility - _TIE_TOLERANCE and best_share is not None:
                # Tie: prefer the incumbent, else the smaller share.
                if candidate == current and best_share != current:
                    best_share = candidate
        if best_share is None:
            raise GameError(f"SC {index} has an empty strategy space")
        return best_share, best_utility
