"""Best responses in the sharing game.

A best response for SC i fixes every other SC's sharing decision and
maximizes SC i's utility (Eq. 2) over its own strategy space.  Two search
strategies are provided:

- ``exhaustive`` — evaluate every candidate (exact; fine for small SCs),
- ``tabu`` — the paper's Tabu-search heuristic (fewer evaluations on
  large strategy spaces; may return a local optimum, which the paper
  mitigates by restarting from different initial points).

Ties are broken toward the *current* decision first (so the dynamics
settle instead of oscillating between equivalent responses) and then
toward sharing less.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from typing import TYPE_CHECKING

from repro import obs
from repro.exceptions import GameError
from repro.game.tabu import TabuSearch
from repro.market.evaluator import UtilityEvaluator

if TYPE_CHECKING:
    from repro.runtime.executor import Executor

_TIE_TOLERANCE = 1e-12


class BestResponder:
    """Computes per-SC best responses through a :class:`UtilityEvaluator`.

    Args:
        evaluator: the caching cost/utility evaluator.
        strategy_spaces: per-SC candidate sharing values.
        method: ``'exhaustive'`` or ``'tabu'``.
        tabu: optional configured :class:`TabuSearch` (defaults match the
            paper's small search distance).
        executor: optional executor used to score candidate sharing
            values concurrently (the exhaustive scan scores its whole
            space at once; Tabu scores each neighborhood).  The objective
            is thread-safe — it builds a private trial profile and the
            evaluator serializes duplicate model solves — so results are
            identical to a serial scan.
    """

    def __init__(
        self,
        evaluator: UtilityEvaluator,
        strategy_spaces: Sequence[Sequence[int]],
        method: str = "exhaustive",
        tabu: TabuSearch | None = None,
        executor: "Executor | None" = None,
    ) -> None:
        if method not in ("exhaustive", "tabu"):
            raise GameError(f"unknown best-response method {method!r}")
        if len(strategy_spaces) != len(evaluator.scenario):
            raise GameError("one strategy space per SC is required")
        self.evaluator = evaluator
        self.strategy_spaces = [list(space) for space in strategy_spaces]
        self.method = method
        self.tabu = tabu if tabu is not None else TabuSearch()
        self.executor = executor

    def respond(self, sharing: Sequence[int], index: int) -> tuple[int, float]:
        """Best sharing value for SC ``index`` given the profile ``sharing``.

        Returns:
            ``(best_share, best_utility)``.
        """
        profile = list(int(s) for s in sharing)
        current = profile[index]

        def objective(candidate: int) -> float:
            trial = list(profile)
            trial[index] = candidate
            return self.evaluator.utility(trial, index)

        with obs.span("game.respond", sc=index, method=self.method):
            obs.inc("game.best_response." + self.method)
            if self.method == "exhaustive":
                return self._exhaustive(objective, index, current)
            best, best_obj, _evals = self.tabu.search(
                self.strategy_spaces[index],
                objective,
                start=current,
                executor=self.executor,
            )
            # Tie-break toward the incumbent: keep the current decision
            # if it is as good as the search result.
            if best != current and current in self.strategy_spaces[index]:
                if objective(current) >= best_obj - _TIE_TOLERANCE:
                    return current, objective(current)
            return best, best_obj

    def _exhaustive(
        self, objective: Callable[[int], float], index: int, current: int
    ) -> tuple[int, float]:
        candidates = self.strategy_spaces[index]
        if self.executor is not None and self.executor.workers > 1 and len(candidates) > 1:
            values = self.executor.map(objective, candidates)
        else:
            values = [objective(candidate) for candidate in candidates]
        best_share: int | None = None
        best_utility = -1.0
        for candidate, value in zip(candidates, values):
            if value > best_utility + _TIE_TOLERANCE:
                best_utility = value
                best_share = candidate
            elif value >= best_utility - _TIE_TOLERANCE and best_share is not None:
                # Tie: prefer the incumbent, else the smaller share.
                if candidate == current and best_share != current:
                    best_share = candidate
        if best_share is None:
            raise GameError(f"SC {index} has an empty strategy space")
        return best_share, best_utility
