"""Strategy spaces for the sharing game.

An SC's strategy is the maximum number of VMs it shares, an integer in
``[0, N_i]``.  For large SCs a coarser step keeps search tractable (the
paper's Tabu search plays the same role); equilibria found on a coarse
grid can be refined by re-running with a finer step around the result.
"""

from __future__ import annotations

from repro._validation import check_positive_int
from repro.core.small_cloud import FederationScenario, SmallCloud
from repro.exceptions import ConfigurationError


def strategy_space(cloud: SmallCloud, step: int = 1, max_share: int | None = None) -> list[int]:
    """Return the candidate sharing values for one SC.

    Args:
        cloud: the SC (bounds the space by ``N_i``).
        step: grid step (>= 1); 0 is always included, and so is the upper
            bound even when the step does not land on it.
        max_share: optional cap below ``N_i``.
    """
    step = check_positive_int(step, "step")
    upper = cloud.vms if max_share is None else int(max_share)
    if not 0 <= upper <= cloud.vms:
        raise ConfigurationError(
            f"max_share must be in [0, {cloud.vms}], got {max_share}"
        )
    space = list(range(0, upper + 1, step))
    if space[-1] != upper:
        space.append(upper)
    return space


def full_strategy_spaces(
    scenario: FederationScenario, step: int = 1, max_share: int | None = None
) -> list[list[int]]:
    """Strategy spaces for every SC of a scenario."""
    return [strategy_space(cloud, step, max_share) for cloud in scenario]
