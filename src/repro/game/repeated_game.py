"""Algorithm 1: the repeated non-cooperative sharing game.

Round ``r``: every SC simultaneously computes a best response to the
profile of round ``r-1`` (the fictitious-play-style information structure
of the paper — SCs know the observed decisions, not each other's
utilities).  The game stops when the profile repeats exactly
(``S^(r) == S^(r-1)``), which is an empirical pure-strategy Nash
equilibrium by construction; cycles are detected and reported instead of
looping forever (the paper's settings always converged, but arbitrary
utilities need not).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence
from typing import TYPE_CHECKING

from repro import obs
from repro._validation import check_positive_int
from repro.exceptions import GameError
from repro.game.best_response import BestResponder

if TYPE_CHECKING:
    from repro.runtime.executor import Executor


@dataclass(frozen=True)
class GameResult:
    """Outcome of one run of Algorithm 1.

    Attributes:
        equilibrium: the final sharing profile.
        utilities: per-SC utilities at that profile.
        iterations: rounds played until convergence (or cycle/budget stop).
        converged: whether a fixed point was reached.
        cycled: whether the dynamics entered a non-trivial cycle.
        history: profile per round, starting with the initial profile.
        model_evaluations: performance-model evaluations consumed.
    """

    equilibrium: tuple[int, ...]
    utilities: tuple[float, ...]
    iterations: int
    converged: bool
    cycled: bool
    history: tuple[tuple[int, ...], ...] = field(repr=False)
    model_evaluations: int = 0


class RepeatedGame:
    """Runner for Algorithm 1.

    Args:
        responder: the per-SC best-response engine.
        max_rounds: round budget before giving up.
        executor: optional executor that computes the round's K best
            responses concurrently.  Algorithm 1 updates simultaneously —
            every SC responds to the *previous* round's profile — so the
            responses are independent by construction and the parallel
            round is identical to the serial one.  (Process executors
            degrade to serial here: best responses share the evaluator's
            in-memory state, which cannot cross process boundaries.)
    """

    def __init__(
        self,
        responder: BestResponder,
        max_rounds: int = 200,
        executor: "Executor | None" = None,
    ) -> None:
        self.responder = responder
        self.max_rounds = check_positive_int(max_rounds, "max_rounds")
        self.executor = executor

    def run(self, initial: Sequence[int] | None = None) -> GameResult:
        """Play until convergence from ``initial`` (default: share nothing).

        On a cycle, the returned profile is the best-welfare profile of
        the cycle under the utilitarian metric (a deterministic,
        documented choice; callers that care should restart from other
        initial points, as the paper does).
        """
        evaluator = self.responder.evaluator
        k = len(evaluator.scenario)
        if initial is None:
            profile = tuple([0] * k)
        else:
            if len(initial) != k:
                raise GameError(f"initial profile must have {k} entries")
            profile = tuple(int(s) for s in initial)
        start_evals = evaluator.total_evaluations
        history: list[tuple[int, ...]] = [profile]
        seen: dict[tuple[int, ...], int] = {profile: 0}

        game_span = obs.span("game.run", k=k, max_rounds=self.max_rounds)
        with game_span:
            result = self._play(profile, history, seen, k, start_evals)
        game_span.set(
            rounds=result.iterations,
            converged=result.converged,
            cycled=result.cycled,
        )
        obs.inc("game.runs")
        obs.inc("game.rounds", result.iterations)
        return result

    def _play(
        self,
        profile: tuple[int, ...],
        history: list[tuple[int, ...]],
        seen: dict[tuple[int, ...], int],
        k: int,
        start_evals: int,
    ) -> GameResult:
        """The round loop of :meth:`run` (split out so the ``game.run``
        span can record the outcome after the result is known)."""
        evaluator = self.responder.evaluator
        for round_number in range(1, self.max_rounds + 1):
            with obs.span("game.round", round=round_number) as round_span:
                if self.executor is not None and self.executor.workers > 1 and k > 1:
                    current = profile
                    responses = self.executor.map(
                        lambda i: self.responder.respond(current, i)[0], range(k)
                    )
                    next_profile = tuple(responses)
                else:
                    next_profile = tuple(
                        self.responder.respond(profile, i)[0] for i in range(k)
                    )
                changed = sum(
                    1 for a, b in zip(profile, next_profile) if a != b
                )
                round_span.set(changed=changed)
                obs.inc("game.profile_changes", changed)
            history.append(next_profile)
            if next_profile == profile:
                return GameResult(
                    equilibrium=next_profile,
                    utilities=tuple(evaluator.utilities(next_profile)),
                    iterations=round_number,
                    converged=True,
                    cycled=False,
                    history=tuple(history),
                    model_evaluations=evaluator.total_evaluations - start_evals,
                )
            if next_profile in seen:
                cycle = history[seen[next_profile] :]
                best = max(
                    cycle,
                    key=lambda p: sum(
                        s * u for s, u in zip(p, evaluator.utilities(p))
                    ),
                )
                return GameResult(
                    equilibrium=best,
                    utilities=tuple(evaluator.utilities(best)),
                    iterations=round_number,
                    converged=False,
                    cycled=True,
                    history=tuple(history),
                    model_evaluations=evaluator.total_evaluations - start_evals,
                )
            seen[next_profile] = len(history) - 1
            profile = next_profile

        return GameResult(
            equilibrium=profile,
            utilities=tuple(evaluator.utilities(profile)),
            iterations=self.max_rounds,
            converged=False,
            cycled=False,
            history=tuple(history),
            model_evaluations=evaluator.total_evaluations - start_evals,
        )
