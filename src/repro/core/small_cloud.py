"""Configuration types shared by all SC-Share models.

A :class:`SmallCloud` captures the paper's per-SC parameters (Sect. II-A):
``N_i`` VMs, Poisson arrival rate ``lambda_i``, exponential service rate
``mu_i``, SLA waiting bound ``Q_i``, and the prices ``C^P_i`` (public
cloud) and ``C^G_i`` (federation).  A :class:`FederationScenario` is an
ordered collection of SCs; every performance model, the simulator, and
the market game consume the same scenario object.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from collections.abc import Iterator, Sequence

from repro._validation import (
    check_non_negative,
    check_non_negative_int,
    check_positive,
    check_positive_int,
    require,
)
from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class SmallCloud:
    """One small cloud provider.

    Attributes:
        name: human-readable identifier.
        vms: total number of homogeneous VMs ``N_i``.
        arrival_rate: Poisson VM-request rate ``lambda_i``.
        service_rate: per-VM exponential service rate ``mu_i``.
        sla_bound: SLA waiting bound ``Q_i`` (time units).
        public_price: cost ``C^P_i`` of one VM-second from the public cloud.
        federation_price: cost ``C^G_i`` of one VM-second from the
            federation (paper assumption: equal across SCs, ``< C^P_i``).
        shared_vms: the sharing decision ``S_i`` (``0 <= S_i <= N_i``).
    """

    name: str
    vms: int
    arrival_rate: float
    service_rate: float = 1.0
    sla_bound: float = 0.2
    public_price: float = 1.0
    federation_price: float = 0.5
    shared_vms: int = 0

    def __post_init__(self) -> None:
        require(bool(self.name), "small cloud must have a non-empty name")
        check_positive_int(self.vms, "vms")
        check_positive(self.arrival_rate, "arrival_rate")
        check_positive(self.service_rate, "service_rate")
        check_non_negative(self.sla_bound, "sla_bound")
        check_positive(self.public_price, "public_price")
        check_non_negative(self.federation_price, "federation_price")
        check_non_negative_int(self.shared_vms, "shared_vms")
        if self.shared_vms > self.vms:
            raise ConfigurationError(
                f"{self.name}: shared_vms={self.shared_vms} exceeds vms={self.vms}"
            )
        if self.federation_price > self.public_price:
            raise ConfigurationError(
                f"{self.name}: federation price {self.federation_price} exceeds "
                f"public price {self.public_price} (paper requires C^G < C^P)"
            )

    @property
    def offered_load(self) -> float:
        """Offered load ``lambda / mu`` in VM units."""
        return self.arrival_rate / self.service_rate

    @property
    def nominal_utilization(self) -> float:
        """Offered load divided by capacity (can exceed 1 for overload)."""
        return self.offered_load / self.vms

    def with_shared(self, shared_vms: int) -> "SmallCloud":
        """Return a copy with a different sharing decision ``S_i``."""
        return replace(self, shared_vms=shared_vms)

    def with_prices(self, public_price: float, federation_price: float) -> "SmallCloud":
        """Return a copy with different prices."""
        return replace(
            self, public_price=public_price, federation_price=federation_price
        )


@dataclass(frozen=True)
class FederationScenario:
    """An ordered federation of small clouds.

    The order is significant for the hierarchical approximate model (the
    last SC in ``clouds`` is the "target SC" in the paper's terminology
    unless a model is asked for a different target, in which case the SCs
    are rotated).
    """

    clouds: tuple[SmallCloud, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        clouds = tuple(self.clouds)
        object.__setattr__(self, "clouds", clouds)
        require(len(clouds) >= 1, "a scenario needs at least one small cloud")
        names = [c.name for c in clouds]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate small-cloud names: {names}")

    def __len__(self) -> int:
        return len(self.clouds)

    def __iter__(self) -> Iterator[SmallCloud]:
        return iter(self.clouds)

    def __getitem__(self, index: int) -> SmallCloud:
        return self.clouds[index]

    @property
    def names(self) -> tuple[str, ...]:
        """Names of all SCs in order."""
        return tuple(c.name for c in self.clouds)

    def index_of(self, name: str) -> int:
        """Index of the SC named ``name``."""
        for i, cloud in enumerate(self.clouds):
            if cloud.name == name:
                return i
        raise ConfigurationError(f"no small cloud named {name!r}")

    def sharing_vector(self) -> tuple[int, ...]:
        """The sharing decisions ``(S_1, ..., S_K)``."""
        return tuple(c.shared_vms for c in self.clouds)

    def total_shared(self) -> int:
        """Total shared VMs across the federation."""
        return sum(c.shared_vms for c in self.clouds)

    def shared_by_others(self, index: int) -> int:
        """``B_i``: VMs shared by every SC except ``index``."""
        return self.total_shared() - self.clouds[index].shared_vms

    def with_sharing(self, sharing: Sequence[int]) -> "FederationScenario":
        """Return a copy with sharing vector ``sharing`` applied in order."""
        if len(sharing) != len(self.clouds):
            raise ConfigurationError(
                f"sharing vector length {len(sharing)} != {len(self.clouds)} SCs"
            )
        return FederationScenario(
            tuple(c.with_shared(int(s)) for c, s in zip(self.clouds, sharing))
        )

    def with_price_ratio(self, ratio: float) -> "FederationScenario":
        """Return a copy where every SC's ``C^G = ratio * C^P``.

        This is the paper's market knob ``C^G/C^P`` (Sect. V-B sweeps it
        over (0, 1]).
        """
        if not 0.0 <= ratio <= 1.0:
            raise ConfigurationError(f"price ratio must be in [0, 1], got {ratio}")
        return FederationScenario(
            tuple(
                c.with_prices(c.public_price, ratio * c.public_price)
                for c in self.clouds
            )
        )

    def rotated_to_target(self, index: int) -> "FederationScenario":
        """Return a copy with SC ``index`` moved to the last (target) slot.

        The hierarchical approximate model evaluates the *last* SC most
        accurately, so per-SC evaluations rotate each SC into that slot.
        """
        clouds = list(self.clouds)
        target = clouds.pop(index)
        return FederationScenario(tuple(clouds + [target]))
