"""Result containers for the SC-Share framework."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SharingDecisionResult:
    """One SC's evaluated position under a sharing vector.

    Attributes:
        name: the SC's name.
        shared_vms: its sharing decision ``S_i``.
        cost: net operating cost ``C_i^{S_i}`` (Eq. 1).
        baseline_cost: no-sharing cost ``C_i^0``.
        utility: utility ``U_i^{S_i}`` (Eq. 2).
        utilization: federation utilization ``rho_i^{S_i}``.
        baseline_utilization: no-sharing utilization ``rho_i^0``.
        lent_mean: ``Ibar_i``.
        borrowed_mean: ``Obar_i``.
        forward_rate: ``Pbar_i``.
    """

    name: str
    shared_vms: int
    cost: float
    baseline_cost: float
    utility: float
    utilization: float
    baseline_utilization: float
    lent_mean: float
    borrowed_mean: float
    forward_rate: float

    @property
    def cost_reduction(self) -> float:
        """``C_i^0 - C_i^{S_i}``: the gain from federating (can be < 0)."""
        return self.baseline_cost - self.cost

    @property
    def participates(self) -> bool:
        """Whether this SC shares anything at all."""
        return self.shared_vms > 0
