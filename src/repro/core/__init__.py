"""Core SC-Share framework.

- :mod:`repro.core.small_cloud` — the :class:`SmallCloud` and
  :class:`FederationScenario` configuration types shared by every model.
- :mod:`repro.core.results` — result containers.
- :mod:`repro.core.framework` — the :class:`SCShare` orchestrator
  implementing the paper's Fig. 2 feedback loop between the performance
  model and the market game.
"""

from typing import Any

from repro.core.results import SharingDecisionResult
from repro.core.small_cloud import FederationScenario, SmallCloud


def __getattr__(name: str) -> Any:
    # SCShare pulls in the game/market stack; import it lazily so the
    # lightweight configuration types stay import-cheap for the simulator
    # and the performance models.
    if name in {"SCShare", "SCShareOutcome"}:
        from repro.core import framework

        return getattr(framework, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "FederationScenario",
    "SCShare",
    "SCShareOutcome",
    "SharingDecisionResult",
    "SmallCloud",
]
