"""JSON-friendly serialization of scenarios and outcomes.

Scenarios round-trip through plain dictionaries (and hence JSON files),
which gives the examples and the CLI a stable configuration format and
lets experiment definitions live outside Python code.  Outcomes serialize
one way (to dicts) for logging and result archiving.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.core.small_cloud import FederationScenario, SmallCloud
from repro.exceptions import ConfigurationError
from repro.perf.params import PerformanceParams

if TYPE_CHECKING:
    from repro.core.framework import SCShareOutcome

_CLOUD_FIELDS = (
    "name",
    "vms",
    "arrival_rate",
    "service_rate",
    "sla_bound",
    "public_price",
    "federation_price",
    "shared_vms",
)


def cloud_to_dict(cloud: SmallCloud) -> dict[str, Any]:
    """Serialize one SC to a plain dictionary."""
    return {field: getattr(cloud, field) for field in _CLOUD_FIELDS}


def cloud_from_dict(data: dict) -> SmallCloud:
    """Deserialize one SC; unknown keys are rejected loudly."""
    unknown = set(data) - set(_CLOUD_FIELDS)
    if unknown:
        raise ConfigurationError(f"unknown small-cloud fields: {sorted(unknown)}")
    if "name" not in data or "vms" not in data or "arrival_rate" not in data:
        raise ConfigurationError(
            "a small cloud needs at least name, vms and arrival_rate"
        )
    return SmallCloud(**data)


def scenario_to_dict(scenario: FederationScenario) -> dict[str, Any]:
    """Serialize a federation scenario."""
    return {"clouds": [cloud_to_dict(c) for c in scenario]}


def scenario_from_dict(data: dict) -> FederationScenario:
    """Deserialize a federation scenario."""
    if "clouds" not in data:
        raise ConfigurationError("scenario dictionary needs a 'clouds' list")
    return FederationScenario(
        tuple(cloud_from_dict(c) for c in data["clouds"])
    )


def save_scenario(scenario: FederationScenario, path: str | Path) -> None:
    """Write a scenario to a JSON file."""
    Path(path).write_text(json.dumps(scenario_to_dict(scenario), indent=2) + "\n")


def load_scenario(path: str | Path) -> FederationScenario:
    """Read a scenario from a JSON file."""
    return scenario_from_dict(json.loads(Path(path).read_text()))


_PARAMS_FIELDS = ("lent_mean", "borrowed_mean", "forward_rate", "utilization")


def params_to_dict(params: PerformanceParams) -> dict[str, Any]:
    """Serialize one :class:`PerformanceParams` to a plain dictionary."""
    return {field: getattr(params, field) for field in _PARAMS_FIELDS}


def params_from_dict(data: dict) -> PerformanceParams:
    """Deserialize one :class:`PerformanceParams`; unknown keys are rejected."""
    unknown = set(data) - set(_PARAMS_FIELDS)
    if unknown:
        raise ConfigurationError(f"unknown performance-params fields: {sorted(unknown)}")
    missing = set(_PARAMS_FIELDS) - set(data)
    if missing:
        raise ConfigurationError(f"missing performance-params fields: {sorted(missing)}")
    return PerformanceParams(**{field: float(data[field]) for field in _PARAMS_FIELDS})


def outcome_to_dict(outcome: "SCShareOutcome") -> dict[str, Any]:
    """Serialize an :class:`~repro.core.framework.SCShareOutcome` for logging."""
    return {
        "equilibrium": list(outcome.equilibrium),
        "welfare": outcome.welfare,
        "optimum_profile": list(outcome.optimum_profile),
        "optimum_welfare": outcome.optimum_welfare,
        "efficiency": outcome.efficiency,
        "alpha": outcome.alpha,
        "gamma": outcome.gamma,
        "iterations": outcome.game.iterations,
        "converged": outcome.game.converged,
        "details": [
            {
                "name": d.name,
                "shared_vms": d.shared_vms,
                "cost": d.cost,
                "baseline_cost": d.baseline_cost,
                "utility": d.utility,
                "utilization": d.utilization,
                "lent_mean": d.lent_mean,
                "borrowed_mean": d.borrowed_mean,
                "forward_rate": d.forward_rate,
            }
            for d in outcome.details
        ],
    }
