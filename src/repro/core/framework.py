"""The SC-Share framework: Fig. 2's feedback loop in one object.

:class:`SCShare` wires a performance model and the market game together:
sharing decisions flow into the performance model, the resulting
``(Ibar, Obar, Pbar, rho)`` feed the cost (Eq. 1) and utility (Eq. 2),
utilities drive the repeated game (Algorithm 1), and the game's new
sharing decisions loop back — iterating to a stable sharing vector.  The
framework also scores the outcome: welfare (Eq. 3) at the chosen fairness
level, the empirical social optimum, and the federation efficiency.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence
from typing import TYPE_CHECKING

from repro._validation import check_in_range
from repro.analysis import sanitize
from repro.core.results import SharingDecisionResult
from repro.core.small_cloud import FederationScenario
from repro.game.best_response import BestResponder
from repro.game.repeated_game import GameResult, RepeatedGame
from repro.game.strategy import full_strategy_spaces
from repro.game.tabu import TabuSearch
from repro.market.cost import operating_cost
from repro.market.efficiency import federation_efficiency, social_optimum
from repro.market.evaluator import ParamsCache, UtilityEvaluator
from repro.perf.base import PerformanceModel
from repro.perf.pooled import PooledModel

if TYPE_CHECKING:
    from repro.runtime.executor import Executor


@dataclass(frozen=True)
class SCShareOutcome:
    """The full outcome of one SC-Share market run.

    Attributes:
        equilibrium: the converged sharing vector.
        game: the raw Algorithm 1 result.
        details: per-SC costs/utilities/performance at the equilibrium.
        welfare: Eq. (3) welfare of the equilibrium at ``alpha``.
        optimum_profile: the empirically market-efficient sharing vector.
        optimum_welfare: its welfare.
        efficiency: ``welfare / optimum_welfare`` with the degenerate-case
            conventions of :func:`repro.market.efficiency.federation_efficiency`.
        alpha: the fairness level used for scoring.
        gamma: the utility exponent used by all SCs.
    """

    equilibrium: tuple[int, ...]
    game: GameResult
    details: tuple[SharingDecisionResult, ...]
    welfare: float
    optimum_profile: tuple[int, ...]
    optimum_welfare: float
    efficiency: float
    alpha: float
    gamma: float


class SCShare:
    """End-to-end SC-Share runner.

    Args:
        scenario: the federation (prices included; initial sharing values
            are ignored — the game decides them).
        model: a performance model; defaults to the fast pooled model
            (use :class:`~repro.perf.approximate.ApproximateModel` for the
            paper-faithful hierarchy when runtime permits).
        gamma: the Eq. (2) exponent shared by all SCs (0 = UF0, 1 = UF1).
        strategy_step: sharing-grid step (1 = every value in ``[0, N_i]``).
        best_response: ``'exhaustive'`` or ``'tabu'``.
        tabu: optional Tabu-search configuration.
        max_rounds: game round budget.
        params_cache: optional shared performance cache (reused across
            price points of a sweep); a
            :class:`repro.runtime.cache.DiskParamsCache` makes it
            persistent across runs.
        executor: optional :class:`repro.runtime.executor.Executor`
            driving the game's parallel sections — per-round best
            responses across SCs and per-SC candidate scoring.  Thread
            executors exploit the shared parameter cache; process
            executors fall back to serial in these sections (game state
            is shared memory) but still accelerate an
            :class:`~repro.perf.approximate.ApproximateModel` configured
            with its own executor.
    """

    def __init__(
        self,
        scenario: FederationScenario,
        model: PerformanceModel | None = None,
        gamma: float = 0.0,
        strategy_step: int = 1,
        best_response: str = "exhaustive",
        tabu: TabuSearch | None = None,
        max_rounds: int = 200,
        params_cache: ParamsCache | None = None,
        executor: "Executor | None" = None,
    ) -> None:
        self.scenario = scenario
        self.model = model if model is not None else PooledModel()
        self.gamma = check_in_range(gamma, "gamma", 0.0, 1.0)
        self.evaluator = UtilityEvaluator(
            scenario, self.model, gamma=self.gamma, params_cache=params_cache
        )
        self.strategy_spaces = full_strategy_spaces(scenario, step=strategy_step)
        self.responder = BestResponder(
            self.evaluator,
            self.strategy_spaces,
            method=best_response,
            tabu=tabu,
            executor=executor,
        )
        self.game = RepeatedGame(self.responder, max_rounds=max_rounds, executor=executor)

    def run(
        self,
        alpha: float = 0.0,
        initial: Sequence[int] | None = None,
        restarts: Sequence[Sequence[int]] = (),
        optimum_method: str = "auto",
    ) -> SCShareOutcome:
        """Run the game to equilibrium and score the market.

        Args:
            alpha: fairness level for welfare scoring.
            initial: initial sharing profile (default: no sharing).
            restarts: extra initial profiles; among all converged runs,
                the one with the best welfare at ``alpha`` is reported
                (the paper restarts Tabu search from different points and
                keeps the fairest equilibrium).
            optimum_method: passed to
                :func:`repro.market.efficiency.social_optimum`.
        """
        results = [self.game.run(initial)]
        for restart in restarts:
            results.append(self.game.run(restart))
        converged = [r for r in results if r.converged] or results
        best = max(
            converged, key=lambda r: self.evaluator.welfare(r.equilibrium, alpha)
        )
        achieved = self.evaluator.welfare(best.equilibrium, alpha)
        sanitize.check_finite(achieved, label="equilibrium welfare")
        optimum_profile, optimum_welfare = social_optimum(
            self.evaluator, alpha, self.strategy_spaces, method=optimum_method
        )
        sanitize.check_finite(optimum_welfare, label="optimum welfare")
        details = self._details(best.equilibrium)
        return SCShareOutcome(
            equilibrium=best.equilibrium,
            game=best,
            details=details,
            welfare=achieved,
            optimum_profile=optimum_profile,
            optimum_welfare=optimum_welfare,
            efficiency=federation_efficiency(achieved, optimum_welfare),
            alpha=alpha,
            gamma=self.gamma,
        )

    def _details(self, profile: tuple[int, ...]) -> tuple[SharingDecisionResult, ...]:
        params = self.evaluator.params(profile)
        rows = []
        for i, cloud in enumerate(self.scenario):
            base = self.evaluator.baseline(i)
            shared_cloud = cloud.with_shared(profile[i])
            rows.append(
                SharingDecisionResult(
                    name=cloud.name,
                    shared_vms=profile[i],
                    cost=operating_cost(shared_cloud, params[i]),
                    baseline_cost=base.cost,
                    utility=self.evaluator.utility(profile, i),
                    utilization=params[i].utilization,
                    baseline_utilization=base.utilization,
                    lent_mean=params[i].lent_mean,
                    borrowed_mean=params[i].borrowed_mean,
                    forward_rate=params[i].forward_rate,
                )
            )
        return tuple(rows)
