"""Markov-chain substrate: CTMC/DTMC construction, steady-state and
transient solvers.

This package is the numerical foundation of the SC-Share reproduction:

- :mod:`repro.markov.state_space` — bijective mapping between structured
  state tuples and dense indices, with reachability exploration.
- :mod:`repro.markov.ctmc` / :mod:`repro.markov.dtmc` — sparse chain
  containers with validation.
- :mod:`repro.markov.solvers` — steady-state solvers (sparse LU, GMRES,
  power iteration on the uniformized chain).
- :mod:`repro.markov.uniformization` — transient distributions via
  uniformization with Fox–Glynn truncation of the Poisson weights.
- :mod:`repro.markov.birth_death` — analytic birth–death solutions used as
  ground truth in tests and as the Sect. III-A no-sharing model substrate.
"""

from repro.markov.birth_death import BirthDeathChain
from repro.markov.ctmc import CTMC, TransitionList
from repro.markov.dtmc import DTMC
from repro.markov.fox_glynn import FoxGlynnWeights, fox_glynn
from repro.markov.solvers import (
    steady_state,
    steady_state_direct,
    steady_state_gmres,
    steady_state_power,
)
from repro.markov.state_space import StateSpace, explore
from repro.markov.uniformization import transient_distribution, uniformize

__all__ = [
    "BirthDeathChain",
    "CTMC",
    "DTMC",
    "FoxGlynnWeights",
    "StateSpace",
    "TransitionList",
    "explore",
    "fox_glynn",
    "steady_state",
    "steady_state_direct",
    "steady_state_gmres",
    "steady_state_power",
    "transient_distribution",
    "uniformize",
]
