"""Bijective state spaces for structured Markov chains.

The detailed federation model (Sect. III-B) and the hierarchical
approximate models (Sect. III-C) both index their CTMCs by structured
tuples — queue lengths plus VM-allocation counters.  :class:`StateSpace`
provides the tuple ↔ dense-index bijection those models need, and
:func:`explore` builds a state space by breadth-first reachability from
seed states under a caller-supplied successor function (so only reachable
states are materialized, which matters for the detailed model whose naive
product space is astronomically larger than its reachable core).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable, Hashable, Iterable, Iterator, Sequence

from repro.exceptions import StateSpaceError

State = Hashable


class StateSpace:
    """An immutable, ordered collection of states with O(1) index lookup.

    States may be any hashable objects (the library uses tuples of ints).
    Iteration order equals index order, so arrays indexed by this space can
    be zipped directly with iteration.
    """

    __slots__ = ("_states", "_index")

    def __init__(self, states: Iterable[State]) -> None:
        self._states: tuple[State, ...] = tuple(states)
        self._index: dict[State, int] = {s: i for i, s in enumerate(self._states)}
        if len(self._index) != len(self._states):
            raise StateSpaceError("duplicate states in state space")
        if not self._states:
            raise StateSpaceError("state space must contain at least one state")

    def __len__(self) -> int:
        return len(self._states)

    def __iter__(self) -> Iterator[State]:
        return iter(self._states)

    def __contains__(self, state: State) -> bool:
        return state in self._index

    def __getitem__(self, index: int) -> State:
        return self._states[index]

    def index(self, state: State) -> int:
        """Return the dense index of ``state``.

        Raises:
            StateSpaceError: if the state is not part of this space.
        """
        try:
            return self._index[state]
        except KeyError:
            raise StateSpaceError(f"state {state!r} not in state space") from None

    def get(self, state: State) -> int | None:
        """Return the index of ``state`` or None if absent."""
        return self._index.get(state)

    def states(self) -> tuple[State, ...]:
        """Return all states in index order."""
        return self._states

    def subset_indices(self, predicate: Callable[[State], bool]) -> list[int]:
        """Return indices of all states satisfying ``predicate``."""
        return [i for i, s in enumerate(self._states) if predicate(s)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StateSpace(n={len(self)})"


def explore(
    seeds: Sequence[State],
    successors: Callable[[State], Iterable[tuple[State, float]]],
    max_states: int = 5_000_000,
) -> StateSpace:
    """Build a :class:`StateSpace` of all states reachable from ``seeds``.

    Args:
        seeds: initial states (must be non-empty).
        successors: maps a state to an iterable of ``(next_state, rate)``
            pairs; rates are ignored here but the signature matches the
            transition generators used to build CTMCs, so the same function
            serves both exploration and matrix assembly.
        max_states: safety bound on the reachable set.

    Returns:
        The reachable state space in BFS discovery order (seeds first).
    """
    if not seeds:
        raise StateSpaceError("explore() needs at least one seed state")
    discovered: dict[State, None] = {}
    queue: deque[State] = deque()
    for seed in seeds:
        if seed not in discovered:
            discovered[seed] = None
            queue.append(seed)
    while queue:
        state = queue.popleft()
        for nxt, _rate in successors(state):
            if nxt not in discovered:
                if len(discovered) >= max_states:
                    raise StateSpaceError(
                        f"reachable state space exceeds max_states={max_states}"
                    )
                discovered[nxt] = None
                queue.append(nxt)
    return StateSpace(discovered.keys())
