"""Fox–Glynn truncation of Poisson probabilities.

Uniformization expresses a CTMC's transient distribution as a Poisson
mixture of DTMC powers.  The Fox–Glynn method (Fox & Glynn, CACM 1988)
bounds the mixture to a finite window ``[left, right]`` whose tail mass is
below a requested precision, and computes the Poisson weights inside the
window in a numerically stable way.

This module implements the stable recurrence variant: weights are computed
outward from the mode (where the Poisson pmf is largest) by the ratio
recurrences ``p(k+1) = p(k) * m / (k+1)`` and ``p(k-1) = p(k) * k / m``,
then normalized.  Window edges are found by walking the recurrence until
the accumulated mass reaches ``1 - epsilon``; this matches the Fox–Glynn
guarantees without the fragile closed-form corner cases of the original
pseudo-code.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro._validation import check_non_negative, check_probability
from repro.analysis import sanitize
from repro.exceptions import TruncationError


@dataclass(frozen=True)
class FoxGlynnWeights:
    """Truncated Poisson weights ``P[K = k]`` for ``k`` in ``[left, right]``.

    Attributes:
        left: first retained Poisson index (inclusive).
        right: last retained Poisson index (inclusive).
        weights: array of length ``right - left + 1``; ``weights[k - left]``
            approximates ``exp(-m) m^k / k!`` and the array sums to at most 1.
        total: sum of ``weights`` (at least ``1 - epsilon``).
    """

    left: int
    right: int
    weights: np.ndarray
    total: float

    def __post_init__(self) -> None:
        if self.right < self.left:
            raise TruncationError(
                f"empty Fox-Glynn window [{self.left}, {self.right}]"
            )
        if len(self.weights) != self.right - self.left + 1:
            raise TruncationError("Fox-Glynn weight length does not match window")


def fox_glynn(rate: float, epsilon: float = 1e-12) -> FoxGlynnWeights:
    """Compute the Fox–Glynn window and Poisson weights for ``Poisson(rate)``.

    Args:
        rate: the Poisson mean ``m = gamma * t`` (non-negative).
        epsilon: total truncated tail mass allowed (in (0, 1)).

    Returns:
        A :class:`FoxGlynnWeights` whose weights cover at least
        ``1 - epsilon`` of the Poisson mass.
    """
    rate = check_non_negative(rate, "rate")
    epsilon = check_probability(epsilon, "epsilon")
    if epsilon <= 0.0:
        raise TruncationError("epsilon must be strictly positive")

    if rate == 0.0:
        return FoxGlynnWeights(left=0, right=0, weights=np.array([1.0]), total=1.0)

    mode = int(math.floor(rate))
    # Work in log space at the mode to avoid under/overflow for large rates.
    log_pmode = -rate + mode * math.log(rate) - math.lgamma(mode + 1)

    # Walk right from the mode until the (unnormalized) tail is negligible.
    # The ratio p(k+1)/p(k) = rate/(k+1) < 1 beyond the mode, so a geometric
    # bound on the remaining tail gives a safe stopping rule.
    right_ratios: list[float] = []
    k = mode
    value = 1.0  # pmf relative to the mode
    acc_right = 0.0
    while True:
        ratio = rate / (k + 1)
        value *= ratio
        if value <= 0.0:
            break
        right_ratios.append(value)
        acc_right += value
        k += 1
        if ratio < 1.0:
            tail_bound = value * ratio / (1.0 - ratio)
            if tail_bound * math.exp(log_pmode) < epsilon / 2.0:
                break
        if k - mode > 10_000_000:  # pragma: no cover - safety net
            raise TruncationError("Fox-Glynn right walk did not terminate")

    # Walk left from the mode symmetrically; pmf ratios shrink towards 0.
    left_values: list[float] = []
    value = 1.0
    j = mode
    while j > 0:
        value *= j / rate
        if value * math.exp(log_pmode) < epsilon / (4.0 * max(mode, 1)):
            break
        left_values.append(value)
        j -= 1

    left = j if j > 0 else 0
    # If we walked all the way to zero, include index 0 explicitly.
    if j == 0 and mode > 0 and (not left_values or len(left_values) < mode):
        pass  # left already equals the last computed index

    left = mode - len(left_values)
    right = mode + len(right_ratios)

    rel = np.empty(right - left + 1, dtype=float)
    rel[mode - left] = 1.0
    # reversed(left_values) runs from the leftmost retained index upward.
    for idx, val in enumerate(reversed(left_values)):
        rel[idx] = val
    for idx, val in enumerate(right_ratios):
        rel[mode - left + 1 + idx] = val

    weights = rel * math.exp(log_pmode)
    total = float(weights.sum())
    if total <= 0.0:  # pragma: no cover - defensive
        raise TruncationError("Fox-Glynn produced zero total mass")
    # Renormalize so downstream mixtures are proper distributions; the
    # discarded tail is below epsilon by construction.
    weights = weights / total
    sanitize.check_weights(weights, label=f"fox-glynn[rate={rate:g}]")
    return FoxGlynnWeights(left=left, right=right, weights=weights, total=total)


def poisson_cdf(k: int, rate: float) -> float:
    """Return ``P[Poisson(rate) <= k]`` stably (used by the SLA model).

    Uses the regularized upper incomplete gamma identity
    ``P[K <= k] = Q(k + 1, rate)`` via :func:`math` when small and a stable
    summation otherwise.
    """
    rate = check_non_negative(rate, "rate")
    if k < 0:
        return 0.0
    if rate == 0.0:
        return 1.0
    # Sum pmf terms from the largest downward for stability.
    log_term = -rate  # log pmf at j=0
    total = math.exp(log_term)
    for j in range(1, k + 1):
        log_term += math.log(rate) - math.log(j)
        total += math.exp(log_term)
    return min(total, 1.0)
