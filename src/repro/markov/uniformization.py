"""Transient CTMC analysis by uniformization.

Given a CTMC generator ``Q`` and horizon ``t``, uniformization picks a rate
``gamma >= max_i |q_ii|``, forms the DTMC ``P = I + Q/gamma``, and expresses
the transient distribution as the Poisson mixture

    p(t) = sum_k  e^{-gamma t} (gamma t)^k / k!  *  p0 P^k.

The Poisson weights are truncated with Fox–Glynn (Sect. III-C of the paper
cites exactly this construction for the approximate model's interaction
probabilities).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro._validation import check_non_negative, check_positive
from repro.analysis import sanitize
from repro.exceptions import ConfigurationError
from repro.markov.ctmc import CTMC
from repro.markov.dtmc import DTMC
from repro.markov.fox_glynn import fox_glynn


def uniformize(ctmc: CTMC, gamma: float | None = None) -> tuple[DTMC, float]:
    """Return the uniformized DTMC of ``ctmc`` and the rate used.

    Args:
        ctmc: the chain to uniformize.
        gamma: optional explicit uniformization rate; must dominate every
            exit rate.  Defaults to the chain's maximum exit rate with a 2%
            slack (keeps self-loops, hence aperiodicity).
    """
    if gamma is None:
        gamma = ctmc.uniformization_rate()
    else:
        gamma = check_positive(gamma, "gamma")
        max_exit = float(ctmc.exit_rates().max(initial=0.0))
        if gamma < max_exit:
            raise ConfigurationError(
                f"gamma={gamma} is below the maximum exit rate {max_exit}"
            )
    n = ctmc.n_states
    p = sp.eye(n, format="csr") + ctmc.generator.multiply(1.0 / gamma)
    p = sp.csr_matrix(p)
    # Round-off can leave tiny negatives on the diagonal when gamma equals
    # the max exit rate exactly; clip and renormalize defensively.
    if p.nnz and p.data.min() < 0.0:
        p.data = np.clip(p.data, 0.0, None)
        row_sums = np.asarray(p.sum(axis=1)).ravel()
        p = sp.diags(1.0 / row_sums) @ p
    sanitize.check_stochastic_matrix(p, label=f"uniformized[gamma={gamma:g}]")
    return DTMC(ctmc.space, p), gamma


def transient_distribution(
    ctmc: CTMC,
    initial: np.ndarray,
    t: float,
    epsilon: float = 1e-10,
    gamma: float | None = None,
) -> np.ndarray:
    """Return the state distribution of ``ctmc`` at time ``t``.

    Args:
        ctmc: the chain.
        initial: row distribution at time zero (length ``n_states``).
        t: horizon (>= 0).
        epsilon: Poisson truncation mass for Fox–Glynn.
        gamma: optional explicit uniformization rate.

    Returns:
        The distribution at time ``t`` (sums to 1 up to truncation error,
        renormalized).
    """
    t = check_non_negative(t, "t")
    initial = np.asarray(initial, dtype=float).ravel()
    if initial.shape != (ctmc.n_states,):
        raise ConfigurationError(
            f"initial distribution has length {initial.shape[0]}, "
            f"expected {ctmc.n_states}"
        )
    total = initial.sum()
    if total <= 0.0 or initial.min() < -1e-12:
        raise ConfigurationError("initial distribution must be non-negative mass")
    initial = np.clip(initial, 0.0, None) / max(initial.sum(), 1e-300)
    if t == 0.0:
        return initial.copy()

    dtmc, gamma = uniformize(ctmc, gamma)
    weights = fox_glynn(gamma * t, epsilon=epsilon)

    result = np.zeros_like(initial)
    vector = initial.copy()
    # Advance to the left edge of the Fox-Glynn window without accumulating.
    for _ in range(weights.left):
        vector = dtmc.step(vector)
    for w in weights.weights:
        result += w * vector
        vector = dtmc.step(vector)
    total = result.sum()
    if total <= 0.0:  # pragma: no cover - defensive
        raise ConfigurationError("transient distribution lost all mass")
    result = result / total
    sanitize.check_distribution(result, label=f"transient[t={t:g}]")
    return result


def transient_matrix(
    ctmc: CTMC,
    t: float,
    epsilon: float = 1e-10,
    gamma: float | None = None,
) -> np.ndarray:
    """Return the dense matrix ``exp(Q t)`` of transition probabilities.

    Only suitable for small chains (used by the approximate model whose
    per-SC chains have a few thousand states at paper scale).  Row ``i``
    is the distribution at time ``t`` starting from state ``i``.
    """
    t = check_non_negative(t, "t")
    n = ctmc.n_states
    if t == 0.0:
        return np.eye(n)
    dtmc, gamma = uniformize(ctmc, gamma)
    weights = fox_glynn(gamma * t, epsilon=epsilon)
    result = np.zeros((n, n))
    power = np.eye(n)
    p_dense = dtmc.matrix.toarray()
    for _ in range(weights.left):
        power = power @ p_dense
    for w in weights.weights:
        result += w * power
        power = power @ p_dense
    row_sums = result.sum(axis=1, keepdims=True)
    result = result / np.clip(row_sums, 1e-300, None)
    sanitize.check_distribution_rows(result, label=f"transient-matrix[t={t:g}]")
    return result
