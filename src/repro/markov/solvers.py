"""Steady-state solvers for CTMC generators.

Three strategies, selectable explicitly or via ``method='auto'``:

- ``direct``  — sparse LU on the constrained linear system; exact up to
  floating point, preferred for the model sizes in this reproduction.
- ``gmres``   — iterative Krylov solve with an ILU preconditioner; scales
  to larger state spaces at some accuracy cost.
- ``power``   — power iteration on the uniformized DTMC; slow but
  unconditionally robust, used as a last-resort fallback and as an
  independent cross-check in tests.

All solvers return a probability row vector ``pi`` with ``pi Q = 0`` and
``sum(pi) = 1``; tiny negative entries from round-off are clipped and the
vector renormalized.

The iterative solvers (``gmres``, ``power``) accept an optional warm
start ``x0`` — a previously solved stationary vector of a *similar*
chain (same state space, perturbed rates).  A good warm start cuts the
iteration count; it never changes what the solver converges to beyond
its tolerance, and the direct solver ignores it entirely.  Malformed
guesses (wrong length, non-finite, non-positive mass) are silently
discarded rather than rejected, so callers can pass whatever neighbor
vector they have without pre-validating it.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro import obs
from repro.analysis import sanitize
from repro.exceptions import ConvergenceError, SolverError


def _clean(pi: np.ndarray, residual_scale: float = 1e-8) -> np.ndarray:
    """Clip round-off negatives and renormalize a candidate distribution."""
    pi = np.asarray(pi, dtype=float).ravel()
    scale = max(float(np.abs(pi).max(initial=0.0)), 1.0)
    min_val = pi.min(initial=0.0)
    if min_val < -residual_scale * scale:
        raise SolverError(
            f"steady-state solution has significant negative mass ({min_val:.3e})"
        )
    pi = np.clip(pi, 0.0, None)
    total = pi.sum()
    if total <= 0.0:
        raise SolverError("steady-state solution has zero total mass")
    return pi / total


def _check_residual(q: sp.spmatrix, pi: np.ndarray, tol: float = 1e-7) -> None:
    """Verify ``pi Q ~ 0`` relative to the generator's magnitude."""
    scale = max(1.0, float(np.abs(q.diagonal()).max(initial=0.0)))
    residual = np.abs(pi @ q).max() / scale
    if residual > tol:
        raise SolverError(f"steady-state residual too large: {residual:.3e}")


def _usable_warm_start(x0: np.ndarray | None, n: int) -> np.ndarray | None:
    """Validate a warm-start vector; return it ravelled or ``None``."""
    if x0 is None:
        return None
    x0 = np.asarray(x0, dtype=float).ravel()
    if x0.shape != (n,) or not np.all(np.isfinite(x0)):
        return None
    if x0.min(initial=0.0) < 0.0 or x0.sum() <= 0.0:
        return None
    return x0


def steady_state_direct(q: sp.spmatrix) -> np.ndarray:
    """Solve ``pi Q = 0, sum(pi)=1`` by sparse LU on the transposed system.

    The singular system is made determinate by *pinning* the first state's
    probability to 1, dropping the (redundant) first balance equation, and
    solving the remaining sparse square system; the result is then
    normalized.  Pinning preserves sparsity — replacing an equation with a
    dense row of ones would destroy the LU fill-in ordering and is orders
    of magnitude slower on chains with tens of thousands of states.  The
    first state is pinned because the library's state spaces start from
    the empty-system state, which always carries non-negligible mass.
    """
    n = q.shape[0]
    if n == 1:
        return np.array([1.0])
    qt = sp.csc_matrix(q.transpose())
    a = qt[1:, 1:]
    # Densifying one n-1 column (the RHS the solver needs dense anyway)
    # is O(n), not an O(n^2) matrix materialization.
    b = -qt[1:, 0].toarray().ravel()  # repro: noqa[RPR401]
    try:
        lu = spla.splu(sp.csc_matrix(a))
        tail = lu.solve(b)
    except RuntimeError as exc:  # singular factorization
        raise SolverError(f"sparse LU failed: {exc}") from exc
    pi = np.concatenate([[1.0], tail])
    pi = _clean(pi)
    _check_residual(q, pi)
    sanitize.check_distribution(pi, label="steady-state[direct]")
    return pi


def steady_state_gmres(
    q: sp.spmatrix,
    tol: float = 1e-12,
    max_iter: int = 20_000,
    x0: np.ndarray | None = None,
) -> np.ndarray:
    """Solve the steady state with preconditioned GMRES.

    Uses the same sparsity-preserving *pinning* construction as
    :func:`steady_state_direct`: fix ``pi[0] = 1``, drop the redundant
    first balance equation, and solve the remaining square system.  The
    earlier formulation replaced one equation with a dense row of ones,
    which destroyed the sparsity the ILU preconditioner relies on.

    Args:
        q: the generator.
        tol: relative GMRES tolerance.
        max_iter: GMRES iteration budget.
        x0: optional warm start — a (possibly unnormalized) stationary
            vector of a similar chain.  Ignored if its first entry
            carries no mass (the pinned system needs ``x0[0] > 0`` to
            rescale).
    """
    n = q.shape[0]
    if n == 1:
        return np.array([1.0])
    qt = sp.csc_matrix(q.transpose())
    a = sp.csc_matrix(qt[1:, 1:])
    # One dense n-1 column for the RHS: O(n), not a matrix blow-up.
    b = -qt[1:, 0].toarray().ravel()  # repro: noqa[RPR401]
    preconditioner = None
    try:
        ilu = spla.spilu(a, drop_tol=1e-6, fill_factor=20)
        preconditioner = spla.LinearOperator(a.shape, ilu.solve)
    except RuntimeError:
        preconditioner = None
    # In the pinned system the unknowns are pi[1:] / pi[0]; a uniform
    # distribution therefore corresponds to a tail of ones.
    guess = np.ones(n - 1)
    warm = _usable_warm_start(x0, n)
    if warm is not None and warm[0] > 0.0:
        guess = warm[1:] / warm[0]
        obs.inc("markov.warm_start.hit")
    elif x0 is not None:
        obs.inc("markov.warm_start.miss")
    tail, info = spla.gmres(
        a, b, x0=guess, rtol=tol, atol=0.0, maxiter=max_iter, M=preconditioner
    )
    if info != 0:
        raise ConvergenceError(f"GMRES did not converge (info={info})")
    pi = np.concatenate([[1.0], tail])
    pi = _clean(pi)
    _check_residual(q, pi, tol=1e-6)
    sanitize.check_distribution(pi, label="steady-state[gmres]")
    return pi


# hot-path: power-iteration inner loop; dominates chain solves
def stationary_power(
    p: sp.spmatrix,
    tol: float = 1e-12,
    max_iter: int = 1_000_000,
    x0: np.ndarray | None = None,
) -> np.ndarray:
    """Power iteration for the stationary distribution of a DTMC matrix.

    ``x0`` warm-starts the iteration from a (renormalized) previous
    stationary vector; a guess near the fixed point saves most of the
    iterations without changing the fixed point itself.
    """
    n = p.shape[0]
    warm = _usable_warm_start(x0, n)
    if warm is not None:
        pi = warm / warm.sum()
        obs.inc("markov.warm_start.hit")
    else:
        if x0 is not None:
            obs.inc("markov.warm_start.miss")
        pi = np.full(n, 1.0 / n)
    for iteration in range(max_iter):
        nxt = np.asarray(pi @ p).ravel()
        delta = np.abs(nxt - pi).max()
        pi = nxt
        if delta < tol:
            obs.inc("markov.power.iterations", iteration + 1)
            return _clean(pi)
        if iteration % 1000 == 999:
            pi = _clean(pi)  # guard against drift
    raise ConvergenceError(
        f"power iteration did not converge within {max_iter} iterations"
    )


def steady_state_power(
    q: sp.spmatrix,
    tol: float = 1e-12,
    max_iter: int = 1_000_000,
    x0: np.ndarray | None = None,
) -> np.ndarray:
    """Steady state via power iteration on the uniformized DTMC."""
    exit_rates = -q.diagonal()
    gamma = float(exit_rates.max(initial=0.0)) * 1.02
    if gamma <= 0.0:
        n = q.shape[0]
        return np.full(n, 1.0 / n)
    p = sp.eye(q.shape[0], format="csr") + q.multiply(1.0 / gamma)
    pi = stationary_power(sp.csr_matrix(p), tol=tol, max_iter=max_iter, x0=x0)
    _check_residual(q, pi, tol=1e-6)
    sanitize.check_distribution(pi, label="steady-state[power]")
    return pi


# Above this size, LU fill on lattice-shaped generators (the detailed
# federation chains) costs minutes and gigabytes; power iteration on the
# uniformized chain is tried first — these chains mix quickly, so it
# typically wins by orders of magnitude and falls through cleanly if not.
_LARGE_CHAIN_THRESHOLD = 20_000

#: Pre-built per-solver metric names: steady_state is hot, and building
#: "markov.solve." + name on every call formats eagerly even with
#: metrics disabled (RPR405).
_SOLVE_METRICS = {
    name: "markov.solve." + name for name in ("direct", "gmres", "power")
}


def steady_state(
    q: sp.spmatrix, method: str = "auto", x0: np.ndarray | None = None
) -> np.ndarray:
    """Solve the CTMC steady state with the requested ``method``.

    ``auto`` picks a solver order by chain size (direct LU first for
    small chains, power iteration first for large ones); the first solver
    that produces a residual-checked distribution wins.  ``x0`` is an
    optional warm start forwarded to the iterative solvers (the direct
    solver ignores it).
    """
    q = sp.csr_matrix(q)
    with obs.span("markov.steady_state", n=q.shape[0], method=method):
        methods = {
            "direct": lambda m: steady_state_direct(m),
            "gmres": lambda m: steady_state_gmres(m, x0=x0),
            "power": lambda m: steady_state_power(m, x0=x0),
        }
        if method in methods:
            pi = methods[method](q)
            obs.inc(_SOLVE_METRICS[method])
            return pi
        if method != "auto":
            raise SolverError(f"unknown steady-state method {method!r}")
        if q.shape[0] > _LARGE_CHAIN_THRESHOLD:
            order: list[tuple] = [
                (
                    "power",
                    lambda m: steady_state_power(
                        m, tol=1e-13, max_iter=100_000, x0=x0
                    ),
                ),
                ("direct", steady_state_direct),
                ("gmres", lambda m: steady_state_gmres(m, x0=x0)),
            ]
        else:
            order = [
                ("direct", steady_state_direct),
                ("gmres", lambda m: steady_state_gmres(m, x0=x0)),
                ("power", lambda m: steady_state_power(m, x0=x0)),
            ]
        errors: list[str] = []
        for name, solver in order:
            try:
                pi = solver(q)
            except SolverError as exc:
                errors.append(f"{name}: {exc}")
            else:
                obs.inc(_SOLVE_METRICS[name])
                return pi
        raise SolverError(
            "all steady-state solvers failed: " + "; ".join(errors)
        )
