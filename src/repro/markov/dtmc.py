"""Discrete-time Markov chain container.

Used as the embedded/uniformized companion of a CTMC: uniformization maps
``Q`` to ``P = I + Q / gamma``; transient analysis then mixes powers of
``P`` with Fox–Glynn Poisson weights.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.exceptions import ConfigurationError
from repro.markov.state_space import StateSpace


class DTMC:
    """A finite DTMC over an explicit state space.

    Attributes:
        space: the state space.
        matrix: the sparse CSR row-stochastic transition matrix.
    """

    def __init__(self, space: StateSpace, matrix: sp.spmatrix) -> None:
        n = len(space)
        if matrix.shape != (n, n):
            raise ConfigurationError(
                f"transition matrix shape {matrix.shape} does not match space {n}"
            )
        self.space = space
        self.matrix = sp.csr_matrix(matrix)
        self._validate()

    def _validate(self) -> None:
        p = self.matrix
        if p.nnz and p.data.min() < -1e-12:
            raise ConfigurationError("DTMC has negative transition probabilities")
        row_sums = np.asarray(p.sum(axis=1)).ravel()
        if np.abs(row_sums - 1.0).max(initial=0.0) > 1e-8:
            raise ConfigurationError(
                "DTMC rows do not sum to one "
                f"(max |row sum - 1| = {np.abs(row_sums - 1.0).max():.3e})"
            )

    @property
    def n_states(self) -> int:
        """Number of states."""
        return len(self.space)

    def step(self, distribution: np.ndarray) -> np.ndarray:
        """Advance a row distribution one step: ``p' = p P``."""
        return np.asarray(distribution @ self.matrix).ravel()

    def power_distribution(self, distribution: np.ndarray, steps: int) -> np.ndarray:
        """Advance ``distribution`` by ``steps`` transitions."""
        if steps < 0:
            raise ConfigurationError(f"steps must be >= 0, got {steps}")
        result = np.asarray(distribution, dtype=float).copy()
        for _ in range(steps):
            result = self.step(result)
        return result

    def stationary(self, tol: float = 1e-12, max_iter: int = 1_000_000) -> np.ndarray:
        """Return the stationary distribution by power iteration.

        Requires the chain to be ergodic (guaranteed for uniformized CTMCs
        built with a slack factor, which keep self-loops everywhere).
        """
        from repro.markov.solvers import stationary_power

        return stationary_power(self.matrix, tol=tol, max_iter=max_iter)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DTMC(n={self.n_states}, nnz={self.matrix.nnz})"
