"""Continuous-time Markov chain container.

A :class:`CTMC` couples a :class:`~repro.markov.state_space.StateSpace`
with a sparse infinitesimal generator ``Q`` (rows sum to zero, off-diagonal
entries non-negative).  It is the common currency between the performance
models, the steady-state solvers, and the uniformization transient solver.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

import numpy as np
import scipy.sparse as sp

from repro.analysis import sanitize
from repro.exceptions import ConfigurationError, StateSpaceError
from repro.markov.state_space import State, StateSpace

TransitionList = Iterable[tuple[State, State, float]]


class CTMC:
    """A finite CTMC over an explicit state space.

    Attributes:
        space: the state space (tuple index <-> state bijection).
        generator: the sparse CSR infinitesimal generator ``Q``.
    """

    def __init__(self, space: StateSpace, generator: sp.spmatrix) -> None:
        n = len(space)
        if generator.shape != (n, n):
            raise ConfigurationError(
                f"generator shape {generator.shape} does not match state space {n}"
            )
        self.space = space
        self.generator = sp.csr_matrix(generator)
        self._validate()
        sanitize.check_generator(self.generator, label=f"CTMC[{n} states]")

    def _validate(self) -> None:
        q = self.generator
        if q.nnz:
            # Off-diagonal negativity via an entry mask — copying the
            # whole generator just to zero its diagonal doubled peak
            # memory on every chain construction.
            entry_rows = np.repeat(
                np.arange(q.shape[0], dtype=np.int64), np.diff(q.indptr)
            )
            off_diag = q.data[entry_rows != q.indices]
            if off_diag.size and off_diag.min() < -1e-12:
                raise ConfigurationError(
                    "CTMC generator has negative off-diagonal rates"
                )
        row_sums = np.asarray(q.sum(axis=1)).ravel()
        scale = max(1.0, float(np.abs(q.diagonal()).max(initial=0.0)))
        if np.abs(row_sums).max(initial=0.0) > 1e-8 * scale:
            raise ConfigurationError(
                "CTMC generator rows do not sum to zero "
                f"(max |row sum| = {np.abs(row_sums).max():.3e})"
            )

    @classmethod
    def from_transitions(cls, space: StateSpace, transitions: TransitionList) -> "CTMC":
        """Assemble a CTMC from ``(source, target, rate)`` triples.

        Self-loops and non-positive rates are dropped; parallel transitions
        between the same pair of states are summed.  Diagonal entries are
        derived so every row sums to zero.
        """
        n = len(space)
        rows: list[int] = []
        cols: list[int] = []
        vals: list[float] = []
        for src, dst, rate in transitions:
            if rate <= 0.0:
                continue
            i = space.index(src)
            j = space.index(dst)
            if i == j:
                continue
            rows.append(i)
            cols.append(j)
            vals.append(float(rate))
        q = sp.coo_matrix((vals, (rows, cols)), shape=(n, n)).tocsr()
        q = q - sp.diags(np.asarray(q.sum(axis=1)).ravel(), format="csr")
        return cls(space, q)

    @classmethod
    def from_successor_function(
        cls,
        space: StateSpace,
        successors: Callable[[State], Iterable[tuple[State, float]]],
    ) -> "CTMC":
        """Assemble a CTMC by evaluating ``successors`` on every state."""

        def triples() -> Iterable[tuple[State, State, float]]:
            for state in space:
                for nxt, rate in successors(state):
                    yield state, nxt, rate

        return cls.from_transitions(space, triples())

    @property
    def n_states(self) -> int:
        """Number of states."""
        return len(self.space)

    def exit_rates(self) -> np.ndarray:
        """Return the exit rate of every state (``-diag(Q)``)."""
        return -self.generator.diagonal()

    def uniformization_rate(self, slack: float = 1.02) -> float:
        """Return a uniformization constant ``gamma >= max exit rate``.

        A small ``slack`` above the maximum keeps the uniformized DTMC
        aperiodic (every state retains a self-loop), which power iteration
        relies on.
        """
        max_rate = float(self.exit_rates().max(initial=0.0))
        if max_rate <= 0.0:
            return 1.0
        return max_rate * slack

    def steady_state(self, method: str = "auto", x0: np.ndarray | None = None) -> np.ndarray:
        """Solve ``pi Q = 0`` with ``sum(pi) = 1``.

        See :func:`repro.markov.solvers.steady_state` for methods; ``x0``
        optionally warm-starts the iterative solvers.
        """
        from repro.markov.solvers import steady_state

        pi = steady_state(self.generator, method=method, x0=x0)
        sanitize.check_distribution(pi, label=f"steady-state[{method}]")
        return pi

    def expected(self, values: np.ndarray, distribution: np.ndarray) -> float:
        """Return ``E[values]`` under ``distribution`` (convenience)."""
        values = np.asarray(values, dtype=float)
        if values.shape != (self.n_states,):
            raise StateSpaceError(
                f"values shape {values.shape} does not match n_states={self.n_states}"
            )
        return float(np.dot(values, distribution))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CTMC(n={self.n_states}, nnz={self.generator.nnz})"
