"""Analytic birth–death chains.

A birth–death CTMC on ``{0, .., n}`` with level-dependent birth rates
``lambda_k`` (k -> k+1) and death rates ``mu_k`` (k -> k-1) has the closed
form stationary distribution

    pi_k = pi_0 * prod_{j=1..k} lambda_{j-1} / mu_j.

The Sect. III-A no-sharing model is exactly such a chain (arrival rate
thinned by the SLA queueing probability above the server count), so this
module provides both its analytic solution and a generic container used as
ground truth for the sparse CTMC machinery in tests.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

import numpy as np

from repro._validation import require
from repro.exceptions import ConfigurationError
from repro.markov.ctmc import CTMC
from repro.markov.state_space import StateSpace


class BirthDeathChain:
    """A finite birth–death chain with explicit per-level rates.

    Args:
        birth_rates: ``birth_rates[k]`` is the rate from level k to k+1,
            for k in ``0 .. n-1`` (length n).
        death_rates: ``death_rates[k]`` is the rate from level k+1 to k,
            for k in ``0 .. n-1`` (length n).
    """

    def __init__(self, birth_rates: Sequence[float], death_rates: Sequence[float]) -> None:
        births = np.asarray(birth_rates, dtype=float)
        deaths = np.asarray(death_rates, dtype=float)
        if births.ndim != 1 or deaths.ndim != 1:
            raise ConfigurationError("rates must be one-dimensional sequences")
        require(len(births) == len(deaths), "birth and death rates must align")
        require(len(births) >= 1, "chain needs at least two levels")
        if births.min(initial=0.0) < 0.0 or deaths.min(initial=np.inf) <= 0.0:
            raise ConfigurationError(
                "birth rates must be >= 0 and death rates must be > 0"
            )
        if not np.all(np.isfinite(births)) or not np.all(np.isfinite(deaths)):
            raise ConfigurationError("rates must be finite")
        self.birth_rates = births
        self.death_rates = deaths
        self.n_levels = len(births) + 1

    def stationary(self) -> np.ndarray:
        """Return the stationary distribution over levels ``0 .. n``.

        Computed with the product-form recurrence in log space to stay
        stable for long chains and extreme rate ratios.
        """
        n = self.n_levels
        log_pi = np.zeros(n)
        with np.errstate(divide="ignore"):
            log_ratios = np.log(self.birth_rates) - np.log(self.death_rates)
        log_pi[1:] = np.cumsum(log_ratios)
        log_pi -= log_pi.max()
        pi = np.exp(log_pi)
        # Levels beyond a zero birth rate get exactly zero mass.
        pi[~np.isfinite(pi)] = 0.0
        return pi / pi.sum()

    def to_ctmc(self) -> CTMC:
        """Materialize the chain as a sparse :class:`CTMC` (for cross-checks)."""
        space = StateSpace(range(self.n_levels))

        def triples() -> Iterator[tuple[int, int, float]]:
            for k, rate in enumerate(self.birth_rates):
                if rate > 0.0:
                    yield k, k + 1, rate
            for k, rate in enumerate(self.death_rates):
                yield k + 1, k, rate

        return CTMC.from_transitions(space, triples())

    def mean_level(self) -> float:
        """Return the stationary mean level ``E[k]``."""
        pi = self.stationary()
        return float(np.dot(np.arange(self.n_levels), pi))


def mmc_chain(arrival_rate: float, service_rate: float, servers: int, capacity: int) -> BirthDeathChain:
    """Build the birth–death chain of an M/M/c/capacity queue.

    Args:
        arrival_rate: Poisson arrival rate ``lambda``.
        service_rate: per-server exponential rate ``mu``.
        servers: number of servers ``c``.
        capacity: maximum number in system (``>= servers``).
    """
    if capacity < servers:
        raise ConfigurationError("capacity must be at least the server count")
    births = [arrival_rate] * capacity
    deaths = [min(k + 1, servers) * service_rate for k in range(capacity)]
    return BirthDeathChain(births, deaths)
