"""Exception hierarchy for the SC-Share reproduction.

All library errors derive from :class:`SCShareError` so callers can catch a
single base class.  Subclasses distinguish configuration problems (caller
bugs) from numerical/convergence failures (runtime conditions the caller may
want to retry with different tolerances).
"""

from __future__ import annotations


class SCShareError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(SCShareError, ValueError):
    """A model or scenario was configured with invalid parameters."""


class StateSpaceError(SCShareError):
    """A state-space construction or lookup failed."""


class SolverError(SCShareError):
    """A numerical solver failed to produce a usable solution."""


class ConvergenceError(SolverError):
    """An iterative procedure did not converge within its iteration budget."""


class TruncationError(SolverError):
    """A truncated computation could not reach the requested precision."""


class SimulationError(SCShareError):
    """The discrete-event simulator reached an inconsistent state."""


class GameError(SCShareError):
    """The market game could not be evaluated or did not terminate."""
