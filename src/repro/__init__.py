"""SC-Share: performance-driven resource sharing markets for small clouds.

A full reproduction of Lin, Pal, Paolieri & Golubchik, *SC-Share:
Performance Driven Resource Sharing Markets for the Small Cloud*
(ICDCS 2017).

Quickstart::

    from repro import FederationScenario, SCShare, SmallCloud

    scenario = FederationScenario((
        SmallCloud(name="sc1", vms=10, arrival_rate=5.8),
        SmallCloud(name="sc2", vms=10, arrival_rate=7.3),
        SmallCloud(name="sc3", vms=10, arrival_rate=8.4),
    )).with_price_ratio(0.5)
    outcome = SCShare(scenario).run(alpha=0.0)
    print(outcome.equilibrium, outcome.efficiency)

Package map (details in DESIGN.md):

- :mod:`repro.core` — configuration types and the SC-Share orchestrator.
- :mod:`repro.perf` — exact / approximate / pooled / simulated
  performance models (Sect. III).
- :mod:`repro.market` — cost, utility, fairness, efficiency (Eq. 1-3).
- :mod:`repro.game` — the repeated sharing game (Algorithm 1, Sect. IV).
- :mod:`repro.sim` — the discrete-event ground-truth simulator.
- :mod:`repro.markov`, :mod:`repro.queueing`, :mod:`repro.workload` —
  substrates.
"""

from typing import Any

from repro.core.small_cloud import FederationScenario, SmallCloud

__version__ = "1.0.0"


def __getattr__(name: str) -> Any:
    # Heavier stacks load lazily so `import repro` stays cheap.
    if name in {"SCShare", "SCShareOutcome"}:
        from repro.core import framework

        return getattr(framework, name)
    if name in {"InvariantViolation", "sanitize_enable", "sanitize_enabled"}:
        import repro.analysis as analysis

        return getattr(analysis, name)
    if name in {
        "ApproximateModel",
        "DetailedModel",
        "PerformanceParams",
        "PooledModel",
        "SimulationModel",
    }:
        import repro.perf as perf

        return getattr(perf, name)
    if name == "FederationSimulator":
        from repro.sim.federation import FederationSimulator

        return FederationSimulator
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "ApproximateModel",
    "DetailedModel",
    "FederationScenario",
    "FederationSimulator",
    "InvariantViolation",
    "PerformanceParams",
    "PooledModel",
    "SCShare",
    "SCShareOutcome",
    "SimulationModel",
    "SmallCloud",
    "__version__",
    "sanitize_enable",
    "sanitize_enabled",
]
