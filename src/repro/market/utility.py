"""The SC utility function — Eq. (2) of the paper.

    U_i^{S_i} = (max(C_i^0 - C_i^{S_i}, 0))^2 / (rho_i^{S_i} - rho_i^0)^gamma

with ``0 <= gamma <= 1``.  ``gamma = 0`` (``UF0``) rewards pure cost
reduction; ``gamma = 1`` (``UF1``) rewards the marginal cost reduction per
unit of utilization increase — since ``0 < rho^S - rho^0 <= 1``, larger
gamma weights the utilization change more heavily.

Edge cases (pinned in DESIGN.md):

- ``S_i = 0`` (not participating) gives utility 0 by definition — the
  numerator is ``max(C^0 - C^0, 0) = 0``.
- For ``gamma > 0``, a non-positive utilization change yields utility 0:
  the paper argues utilization must strictly increase for a sharing SC,
  so a model evaluation violating that means sharing brought no benefit.
"""

from __future__ import annotations

from repro._validation import check_in_range

#: The paper's named utility-function variants.
UF0 = 0.0
UF1 = 1.0

_MIN_UTILIZATION_GAIN = 1e-12


def utility(
    baseline_cost: float,
    cost: float,
    baseline_utilization: float,
    utilization: float,
    gamma: float = UF0,
) -> float:
    """Evaluate Eq. (2).

    Args:
        baseline_cost: ``C_i^0`` (no sharing).
        cost: ``C_i^{S_i}`` (with the current sharing decision).
        baseline_utilization: ``rho_i^0``.
        utilization: ``rho_i^{S_i}``.
        gamma: the utilization-importance exponent in [0, 1].

    Returns:
        The non-negative utility.
    """
    gamma = check_in_range(gamma, "gamma", 0.0, 1.0)
    reduction = max(baseline_cost - cost, 0.0)
    if reduction == 0.0:
        return 0.0
    numerator = reduction * reduction
    if gamma == 0.0:
        return numerator
    gain = utilization - baseline_utilization
    if gain <= _MIN_UTILIZATION_GAIN:
        return 0.0
    return numerator / gain**gamma
