"""Price-region analysis — the paper's summary of Fig. 7.

Sect. V-B concludes with three operating regions for the price ratio
``C^G/C^P``: a low range maximizing proportional fairness, a middle range
maximizing max-min fairness, and a high range maximizing utilitarian
welfare (at the risk of federation collapse near 1).  This module turns a
Fig. 7 sweep into that recommendation: for each fairness objective it
locates the efficiency-maximizing price region and flags where the
federation stops forming.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.exceptions import ConfigurationError

if TYPE_CHECKING:
    from repro.bench.fig7 import Fig7Row


@dataclass(frozen=True)
class PriceRegion:
    """The recommended price range for one fairness objective.

    Attributes:
        objective: fairness name (``'utilitarian'`` etc.).
        best_ratio: the single best price ratio observed.
        low: smallest ratio within ``tolerance`` of the best efficiency.
        high: largest such ratio.
        efficiency: the best efficiency achieved.
    """

    objective: str
    best_ratio: float
    low: float
    high: float
    efficiency: float


@dataclass(frozen=True)
class RegionReport:
    """Full price-setting recommendation from one Fig. 7 sweep."""

    regions: tuple[PriceRegion, ...]
    collapse_ratios: tuple[float, ...]  # ratios where nobody shares

    def region(self, objective: str) -> PriceRegion:
        """The region for one objective."""
        for region in self.regions:
            if region.objective == objective:
                return region
        raise ConfigurationError(f"no region for objective {objective!r}")


def analyze_regions(rows: Sequence["Fig7Row"], tolerance: float = 0.05) -> RegionReport:
    """Reduce Fig. 7 sweep rows to price-region recommendations.

    Args:
        rows: the output of :func:`repro.bench.fig7.run_fig7`.
        tolerance: ratios whose efficiency is within this of the maximum
            are included in the recommended region.
    """
    if not rows:
        raise ConfigurationError("analyze_regions needs at least one sweep row")
    objectives = sorted(rows[0].efficiency)
    regions = []
    for objective in objectives:
        scored = [(r.price_ratio, r.efficiency[objective]) for r in rows]
        best_ratio, best_eff = max(scored, key=lambda pair: pair[1])
        near = [ratio for ratio, eff in scored if eff >= best_eff - tolerance]
        regions.append(
            PriceRegion(
                objective=objective,
                best_ratio=best_ratio,
                low=min(near) if near else best_ratio,
                high=max(near) if near else best_ratio,
                efficiency=best_eff,
            )
        )
    collapse = tuple(r.price_ratio for r in rows if not r.federation_formed)
    return RegionReport(regions=tuple(regions), collapse_ratios=collapse)
