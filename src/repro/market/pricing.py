"""Price grids for market sweeps.

The paper's market knob is the ratio ``C^G / C^P`` of the federation
price to the public-cloud price, swept over (0, 1] in Sect. V-B.
"""

from __future__ import annotations

import numpy as np

from repro._validation import check_positive_int
from repro.exceptions import ConfigurationError


def price_ratio_grid(
    points: int = 11, low: float = 0.0, high: float = 1.0, include_zero: bool = False
) -> list[float]:
    """Return an evenly spaced grid of ``C^G/C^P`` ratios.

    Args:
        points: number of grid points (>= 2).
        low: lower bound (>= 0).
        high: upper bound (<= 1).
        include_zero: whether ratio 0 is kept (a free federation is a
            degenerate market; excluded by default, mirroring the paper's
            plots which start just above zero).
    """
    points = check_positive_int(points, "points")
    if points < 2:
        raise ConfigurationError("grid needs at least two points")
    if not 0.0 <= low < high <= 1.0:
        raise ConfigurationError(
            f"grid bounds must satisfy 0 <= low < high <= 1, got [{low}, {high}]"
        )
    grid = np.linspace(low, high, points)
    ratios = [float(r) for r in grid]
    if not include_zero:
        ratios = [r for r in ratios if r > 0.0]
    return ratios
