"""The net operating cost of an SC — Eq. (1) of the paper.

    C_i^{S_i} = Pbar_i * C_i^P + (Obar_i - Ibar_i) * C_i^G

``Pbar_i`` is the public-cloud forwarding rate, ``Obar_i`` the mean VMs
borrowed from the federation, ``Ibar_i`` the mean VMs lent to it.  The
second term is negative for net lenders — lending is revenue at the
federation price.  The no-sharing baseline ``C_i^0`` uses the Sect. III-A
model (``Obar = Ibar = 0``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.small_cloud import SmallCloud
from repro.perf.params import PerformanceParams
from repro.queueing.forwarding import NoSharingModel


def operating_cost(cloud: SmallCloud, params: PerformanceParams) -> float:
    """Evaluate Eq. (1) for one SC.

    Args:
        cloud: the SC (supplies ``C^P`` and ``C^G``).
        params: its performance parameters inside the federation.

    Returns:
        The net cost per time unit (negative when lending revenue exceeds
        forwarding and borrowing costs).
    """
    return (
        params.forward_rate * cloud.public_price
        + params.net_borrowed * cloud.federation_price
    )


@dataclass(frozen=True)
class BaselineMetrics:
    """The no-sharing reference point of one SC.

    Attributes:
        cost: ``C_i^0 = Pbar_i^0 * C_i^P``.
        utilization: ``rho_i^0``.
        forward_rate: ``Pbar_i^0``.
    """

    cost: float
    utilization: float
    forward_rate: float


def baseline_metrics(cloud: SmallCloud, tail_epsilon: float = 1e-12) -> BaselineMetrics:
    """Solve the Sect. III-A no-sharing model and price it.

    The result depends only on ``(N, lambda, mu, Q, C^P)`` — not on the
    sharing decision or the federation price — so callers cache it per SC.
    """
    model = NoSharingModel(
        cloud.vms,
        cloud.arrival_rate,
        cloud.service_rate,
        cloud.sla_bound,
        tail_epsilon=tail_epsilon,
    )
    return BaselineMetrics(
        cost=model.forward_rate * cloud.public_price,
        utilization=model.utilization,
        forward_rate=model.forward_rate,
    )


def baseline_cost(cloud: SmallCloud) -> float:
    """``C_i^0``: the SC's cost when it does not participate."""
    return baseline_metrics(cloud).cost
