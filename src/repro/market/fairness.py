"""Weighted α-fairness welfare — Eq. (3) of the paper.

    W(alpha, S, U) = sum_i S_i * U_i^{1-alpha} / (1-alpha)    (alpha != 1)
    W(1, S, U)     = sum_i S_i * log U_i

weighted by the sharing decisions ``S_i``.  Three named values cover the
paper's evaluation: ``alpha = 0`` (utilitarian), ``alpha = 1``
(proportional fairness), and ``alpha = inf`` (max-min, implemented as the
minimum utility over participating SCs).

Conventions for degenerate inputs (DESIGN.md):

- SCs with ``S_i = 0`` contribute nothing (weight zero), including under
  the logarithm (``0 * log 0 := 0``).
- A participating SC with zero utility drives ``W`` to ``-inf`` for
  ``alpha >= 1`` (proportional fairness rejects starving anyone), and
  contributes 0 for ``alpha < 1``.
- If nobody participates the welfare is 0 for every alpha, and the
  efficiency layer reports zero federation efficiency.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from repro._validation import check_non_negative, require
from repro.exceptions import ConfigurationError

ALPHA_UTILITARIAN = 0.0
ALPHA_PROPORTIONAL = 1.0
ALPHA_MAX_MIN = math.inf


def welfare(alpha: float, shares: Sequence[int], utilities: Sequence[float]) -> float:
    """Evaluate Eq. (3).

    Args:
        alpha: fairness parameter (>= 0; ``math.inf`` selects max-min).
        shares: the sharing decisions ``S_i`` (the weights).
        utilities: the utilities ``U_i^{S_i}``.

    Returns:
        The welfare value; ``-inf`` is possible for ``alpha >= 1`` when a
        participating SC has zero utility.
    """
    require(len(shares) == len(utilities), "shares and utilities must align")
    if alpha != math.inf:
        check_non_negative(alpha, "alpha")
    for u in utilities:
        if u < 0:
            raise ConfigurationError(f"utilities must be >= 0, got {u}")

    participating = [(s, u) for s, u in zip(shares, utilities) if s > 0]
    if not participating:
        return 0.0

    if alpha == math.inf:
        return min(u for _s, u in participating)

    if alpha == 1.0:
        total = 0.0
        for s, u in participating:
            if u == 0.0:
                return -math.inf
            total += s * math.log(u)
        return total

    exponent = 1.0 - alpha
    total = 0.0
    for s, u in participating:
        if u == 0.0:
            if exponent < 0.0:
                return -math.inf
            continue
        total += s * u**exponent / exponent
    return total
