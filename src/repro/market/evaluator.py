"""Caching bridge between sharing vectors and market quantities.

The game repeatedly asks "what is SC i's cost/utility if the sharing
vector is S?".  Answering requires a performance-model evaluation, which
is the expensive step — and crucially, the *performance* parameters
depend only on the sharing vector (and the SCs' rates), never on prices.
:class:`UtilityEvaluator` therefore caches performance parameters by
sharing vector, so an entire ``C^G/C^P`` sweep (which changes only
prices) reuses one set of model solutions.
"""

from __future__ import annotations

import threading
from collections.abc import MutableMapping, Sequence

from repro._validation import check_in_range
from repro.analysis import sanitize
from repro.core.small_cloud import FederationScenario
from repro.market.cost import BaselineMetrics, baseline_metrics, operating_cost
from repro.market.fairness import welfare
from repro.market.utility import utility as utility_fn
from repro.perf.base import PerformanceModel
from repro.perf.params import PerformanceParams

#: Cache type mapping sharing vectors to per-SC performance parameters.
#: Plain dictionaries work; :class:`repro.runtime.cache.DiskParamsCache`
#: is a persistent drop-in that survives process restarts.
ParamsCache = MutableMapping[tuple[int, ...], list[PerformanceParams]]


class UtilityEvaluator:
    """Evaluates costs, utilities, and welfare for sharing vectors.

    Args:
        scenario: the federation with its prices; sharing decisions in it
            are ignored (each query supplies a vector).
        model: any :class:`PerformanceModel`.
        gamma: the Eq. (2) utilization exponent, shared by all SCs (the
            paper fixes one gamma per experiment).
        params_cache: optional externally shared cache.  Pass the same
            mapping to evaluators with different prices to reuse model
            solutions across a price sweep.
    """

    def __init__(
        self,
        scenario: FederationScenario,
        model: PerformanceModel,
        gamma: float = 0.0,
        params_cache: ParamsCache | None = None,
    ) -> None:
        self.scenario = scenario
        self.model = model
        self.gamma = check_in_range(gamma, "gamma", 0.0, 1.0)
        self._cache: ParamsCache = params_cache if params_cache is not None else {}
        self._baselines: list[BaselineMetrics] = [
            baseline_metrics(cloud) for cloud in scenario
        ]
        self.evaluations = 0  # number of *model* evaluations performed
        # Concurrent callers (thread executors scoring candidates) must
        # solve each sharing vector exactly once, both to avoid wasted
        # work and to keep `evaluations` equal to a serial run's count.
        # The lock guards the cache and the pending table; the expensive
        # model solve itself runs outside it.
        self._lock = threading.Lock()
        self._pending: dict[tuple[int, ...], threading.Event] = {}

    def baseline(self, index: int) -> BaselineMetrics:
        """The no-sharing reference of SC ``index``."""
        return self._baselines[index]

    def params(self, sharing: Sequence[int]) -> list[PerformanceParams]:
        """Performance parameters for every SC under ``sharing`` (cached).

        Safe to call from multiple threads: the first caller of an
        uncached vector solves it, later callers of the same vector wait
        for that solve instead of duplicating it.
        """
        key = tuple(int(s) for s in sharing)
        while True:
            with self._lock:
                if key in self._cache:
                    return self._cache[key]
                event = self._pending.get(key)
                if event is None:
                    event = threading.Event()
                    self._pending[key] = event
                    owner = True
                else:
                    owner = False
            if not owner:
                event.wait()
                continue  # the owner has published (or failed); re-check
            try:
                params = self.model.evaluate(self.scenario.with_sharing(key))
                if sanitize.sanitize_enabled():
                    for i, entry in enumerate(params):
                        sanitize.check_params(entry, label=f"params[{key}][{i}]")
                with self._lock:
                    self._cache[key] = params
                    self.evaluations += 1
                return params
            finally:
                with self._lock:
                    self._pending.pop(key, None)
                event.set()

    def cost(self, sharing: Sequence[int], index: int) -> float:
        """``C_i^{S_i}`` (Eq. 1) for SC ``index`` under ``sharing``."""
        cloud = self.scenario[index].with_shared(int(sharing[index]))
        return operating_cost(cloud, self.params(sharing)[index])

    def utility(self, sharing: Sequence[int], index: int) -> float:
        """``U_i^{S_i}`` (Eq. 2) for SC ``index`` under ``sharing``."""
        if sharing[index] == 0:
            return 0.0
        base = self._baselines[index]
        params = self.params(sharing)[index]
        cloud = self.scenario[index].with_shared(int(sharing[index]))
        return utility_fn(
            baseline_cost=base.cost,
            cost=operating_cost(cloud, params),
            baseline_utilization=base.utilization,
            utilization=params.utilization,
            gamma=self.gamma,
        )

    def utilities(self, sharing: Sequence[int]) -> list[float]:
        """All SCs' utilities under ``sharing``."""
        values = [self.utility(sharing, i) for i in range(len(self.scenario))]
        sanitize.check_utilities(values, label=f"utilities[{tuple(sharing)}]")
        return values

    def welfare(self, sharing: Sequence[int], alpha: float) -> float:
        """The Eq. (3) welfare of ``sharing`` at fairness level ``alpha``."""
        return welfare(alpha, list(sharing), self.utilities(sharing))

    def cache_size(self) -> int:
        """Number of distinct sharing vectors evaluated so far."""
        return len(self._cache)
