"""Caching bridge between sharing vectors and market quantities.

The game repeatedly asks "what is SC i's cost/utility if the sharing
vector is S?".  Answering requires a performance-model evaluation, which
is the expensive step — and crucially, the *performance* parameters
depend only on the sharing vector (and the SCs' rates), never on prices.
:class:`UtilityEvaluator` therefore caches performance parameters by
sharing vector, so an entire ``C^G/C^P`` sweep (which changes only
prices) reuses one set of model solutions.

Single-SC queries (``utility`` / ``cost``, the best-response objective)
additionally take a *target-indexed* path: they ask the model for SC
``i``'s parameters only (``evaluate_target``), which the hierarchical
approximate model answers with one chain rotation instead of all ``K``.
The contract ``evaluate_target(s, i) == evaluate(s)[i]`` makes the two
paths interchangeable; full-vector queries (``utilities`` / ``welfare``)
keep using ``evaluate`` so they populate the shared params cache.
"""

from __future__ import annotations

import threading
from collections.abc import MutableMapping, Sequence

from repro._validation import check_in_range
from repro import obs
from repro.analysis import sanitize
from repro.core.small_cloud import FederationScenario
from repro.market.cost import BaselineMetrics, baseline_metrics, operating_cost
from repro.market.fairness import welfare
from repro.market.utility import utility as utility_fn
from repro.perf.base import PerformanceModel
from repro.perf.params import PerformanceParams

#: Cache type mapping sharing vectors to per-SC performance parameters.
#: Plain dictionaries work; :class:`repro.runtime.cache.DiskParamsCache`
#: is a persistent drop-in that survives process restarts.  Persistent
#: implementations must key on content fingerprints only — the RPR3xx
#: dataflow lint (:mod:`repro.analysis.dataflow`) enforces that their
#: key-building functions omit no declared input and carry no
#: environment taint.
ParamsCache = MutableMapping[tuple[int, ...], list[PerformanceParams]]


class UtilityEvaluator:
    """Evaluates costs, utilities, and welfare for sharing vectors.

    Args:
        scenario: the federation with its prices; sharing decisions in it
            are ignored (each query supplies a vector).
        model: any :class:`PerformanceModel`.
        gamma: the Eq. (2) utilization exponent, shared by all SCs (the
            paper fixes one gamma per experiment).
        params_cache: optional externally shared cache.  Pass the same
            mapping to evaluators with different prices to reuse model
            solutions across a price sweep.
    """

    def __init__(
        self,
        scenario: FederationScenario,
        model: PerformanceModel,
        gamma: float = 0.0,
        params_cache: ParamsCache | None = None,
    ) -> None:
        self.scenario = scenario
        self.model = model
        self.gamma = check_in_range(gamma, "gamma", 0.0, 1.0)
        self._cache: ParamsCache = (  # guarded-by: _lock
            params_cache if params_cache is not None else {}
        )
        self._baselines: list[BaselineMetrics] = [
            baseline_metrics(cloud) for cloud in scenario
        ]
        # Concurrent callers (thread executors scoring candidates) must
        # solve each sharing vector exactly once, both to avoid wasted
        # work and to keep `evaluations` equal to a serial run's count.
        # The lock guards the caches and the pending tables; the
        # expensive model solve itself runs outside it.
        self.evaluations = 0  # guarded-by: _lock
        self.target_evaluations = 0  # guarded-by: _lock
        self._lock = threading.Lock()
        self._pending: dict[  # guarded-by: _lock
            tuple[int, ...], threading.Event
        ] = {}
        self._target_cache: dict[  # guarded-by: _lock
            tuple[tuple[int, ...], int], PerformanceParams
        ] = {}
        self._target_pending: dict[  # guarded-by: _lock
            tuple[tuple[int, ...], int], threading.Event
        ] = {}

    def baseline(self, index: int) -> BaselineMetrics:
        """The no-sharing reference of SC ``index``."""
        return self._baselines[index]

    def params(self, sharing: Sequence[int]) -> list[PerformanceParams]:
        """Performance parameters for every SC under ``sharing`` (cached).

        Safe to call from multiple threads: the first caller of an
        uncached vector solves it, later callers of the same vector wait
        for that solve instead of duplicating it.
        """
        key = tuple(int(s) for s in sharing)
        while True:
            with self._lock:
                cached = self._cache.get(key)
                if cached is None:
                    event = self._pending.get(key)
                    if event is None:
                        event = threading.Event()
                        self._pending[key] = event
                        owner = True
                    else:
                        owner = False
            if cached is not None:
                obs.inc("market.params.hit")
                return cached
            if not owner:
                obs.inc("market.params.dedup_wait")
                event.wait()
                continue  # the owner has published (or failed); re-check
            try:
                params = self.model.evaluate(self.scenario.with_sharing(key))
                if sanitize.sanitize_enabled():
                    for i, entry in enumerate(params):
                        sanitize.check_params(entry, label=f"params[{key}][{i}]")
                with self._lock:
                    self._cache[key] = params
                    self.evaluations += 1
                obs.inc("market.params.solve")
                return params
            finally:
                with self._lock:
                    self._pending.pop(key, None)
                event.set()

    def params_target(
        self,
        sharing: Sequence[int],
        index: int,
        deviation: int | None = None,
    ) -> PerformanceParams:
        """Performance parameters of SC ``index`` only (cached).

        Uses :meth:`PerformanceModel.evaluate_target`, whose contract is
        ``evaluate_target(s, i) == evaluate(s)[i]`` — the hierarchical
        approximate model answers it with one chain rotation instead of
        all ``K``, which makes best-response scans (many single-SC
        queries over trial vectors) roughly ``K`` times cheaper.  A full
        cached vector is always preferred; target solves land in a
        separate per-``(vector, index)`` cache and are counted in
        ``target_evaluations``, not ``evaluations``.

        ``deviation`` is the game layer's single-SC deviation hint,
        forwarded to the model for incremental-reuse attribution; it is
        observational and never part of any cache key.
        """
        key = tuple(int(s) for s in sharing)
        target = (key, int(index))
        while True:
            hit: str | None = None
            result: PerformanceParams | None = None
            with self._lock:
                if key in self._cache:
                    hit, result = "market.target.full_hit", self._cache[key][index]
                elif target in self._target_cache:
                    hit, result = "market.target.hit", self._target_cache[target]
                else:
                    event = self._target_pending.get(target)
                    if event is None:
                        event = threading.Event()
                        self._target_pending[target] = event
                        owner = True
                    else:
                        owner = False
            if hit is not None:
                obs.inc(hit)
                assert result is not None
                return result
            if not owner:
                obs.inc("market.target.dedup_wait")
                event.wait()
                continue  # the owner has published (or failed); re-check
            try:
                params = self.model.evaluate_target(
                    self.scenario.with_sharing(key),
                    target=int(index),
                    deviation=deviation,
                )
                if sanitize.sanitize_enabled():
                    sanitize.check_params(params, label=f"params[{key}][{index}]")
                with self._lock:
                    self._target_cache[target] = params
                    self.target_evaluations += 1
                obs.inc("market.target.solve")
                return params
            finally:
                with self._lock:
                    self._target_pending.pop(target, None)
                event.set()

    def seed_target(
        self, sharing: Sequence[int], index: int, params: PerformanceParams
    ) -> bool:
        """Install a target solve computed elsewhere (a process-pool
        worker scoring a best-response candidate) into the target cache.

        The parameters must be exactly what :meth:`params_target` would
        have produced — workers run the same pure model, so this holds by
        construction.  First writer wins: if the entry is already cached
        (a thread worker sharing this evaluator already published it),
        the seed is dropped and not counted, keeping
        ``target_evaluations`` equal to a serial run's count.

        Returns:
            ``True`` if the entry was inserted, ``False`` on a duplicate.
        """
        key = tuple(int(s) for s in sharing)
        target = (key, int(index))
        with self._lock:
            if key in self._cache or target in self._target_cache:
                obs.inc("market.target.seed_duplicate")
                return False
            self._target_cache[target] = params
            self.target_evaluations += 1
        obs.inc("market.target.seeded")
        return True

    def cost(
        self, sharing: Sequence[int], index: int, deviation: int | None = None
    ) -> float:
        """``C_i^{S_i}`` (Eq. 1) for SC ``index`` under ``sharing``."""
        cloud = self.scenario[index].with_shared(int(sharing[index]))
        return operating_cost(cloud, self.params_target(sharing, index, deviation))

    def utility(
        self, sharing: Sequence[int], index: int, deviation: int | None = None
    ) -> float:
        """``U_i^{S_i}`` (Eq. 2) for SC ``index`` under ``sharing``."""
        if sharing[index] == 0:
            return 0.0
        return self._utility_from(
            sharing, index, self.params_target(sharing, index, deviation)
        )

    def _utility_from(
        self, sharing: Sequence[int], index: int, params: PerformanceParams
    ) -> float:
        base = self._baselines[index]
        cloud = self.scenario[index].with_shared(int(sharing[index]))
        return utility_fn(
            baseline_cost=base.cost,
            cost=operating_cost(cloud, params),
            baseline_utilization=base.utilization,
            utilization=params.utilization,
            gamma=self.gamma,
        )

    def utilities(self, sharing: Sequence[int]) -> list[float]:
        """All SCs' utilities under ``sharing``.

        Solves the full vector once (populating the shared params cache)
        rather than issuing one target query per SC.
        """
        params = self.params(sharing)
        values = [
            0.0 if sharing[i] == 0 else self._utility_from(sharing, i, params[i])
            for i in range(len(self.scenario))
        ]
        sanitize.check_utilities(values, label=f"utilities[{tuple(sharing)}]")
        return values

    def welfare(self, sharing: Sequence[int], alpha: float) -> float:
        """The Eq. (3) welfare of ``sharing`` at fairness level ``alpha``."""
        return welfare(alpha, list(sharing), self.utilities(sharing))

    @property
    def total_evaluations(self) -> int:
        """Full-vector plus single-SC model solves.

        The game layer reports this as its ``model_evaluations`` effort
        metric: a best-response trial costs one solve on either path, so
        the combined count stays comparable across configurations."""
        return self.evaluations + self.target_evaluations

    def cache_size(self) -> int:
        """Number of distinct sharing vectors evaluated so far."""
        return len(self._cache)

    # -- pickling: drop the lock and in-flight tables ------------------- #
    #
    # Executors pickle task payloads; a live lock or Event is unpicklable
    # and an in-flight pending table is meaningless in another process.
    # The solved caches *are* shipped (a dict of parameters pickles fine,
    # a DiskParamsCache ships as its root path + namespace), so a worker
    # copy starts warm and stays correct — it just stops sharing
    # single-flight discipline with the parent.

    def __getstate__(self) -> dict[str, object]:
        state = dict(self.__dict__)
        del state["_lock"]
        state["_pending"] = {}
        state["_target_pending"] = {}
        return state

    def __setstate__(self, state: dict[str, object]) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def cache_info(self) -> dict[str, object]:
        """Cache effectiveness counters for logs and benchmarks.

        Combines this evaluator's params cache with the wrapped model's
        level-prefix cache statistics when the model exposes them (the
        approximate model does via ``level_cache_stats``)."""
        info: dict[str, object] = {
            "params_cache_size": len(self._cache),
            "target_cache_size": len(self._target_cache),
            "model_evaluations": self.evaluations,
            "target_evaluations": self.target_evaluations,
        }
        stats = getattr(self.model, "level_cache_stats", None)
        if callable(stats):
            info["level_cache"] = stats()
        return info
