"""Federation efficiency: achieved welfare over market-efficient welfare.

Sect. V-B scores each price setting by the ratio of the welfare ``W``
achieved at the game's equilibrium to the *(empirical) market-efficient*
``W`` — the best welfare over all sharing profiles.  Finding the optimum
is a global search over the joint strategy space; this module provides a
brute-force search (exact, exponential) and a multi-start coordinate
ascent (the default for anything beyond tiny spaces).
"""

from __future__ import annotations

import itertools
import math
from collections.abc import Iterator, Sequence

from repro._validation import check_positive_int
from repro.exceptions import GameError
from repro.market.evaluator import UtilityEvaluator


def _profiles(spaces: Sequence[Sequence[int]]) -> Iterator[tuple[int, ...]]:
    return itertools.product(*spaces)


def social_optimum(
    evaluator: UtilityEvaluator,
    alpha: float,
    strategy_spaces: Sequence[Sequence[int]],
    method: str = "auto",
    starts: int = 4,
    brute_force_limit: int = 300,
) -> tuple[tuple[int, ...], float]:
    """Find the sharing profile maximizing the Eq. (3) welfare.

    Args:
        evaluator: the (cached) market evaluator.
        alpha: fairness parameter.
        strategy_spaces: per-SC candidate sharing values.
        method: ``'brute'``, ``'ascent'``, or ``'auto'`` (brute force when
            the joint space has at most ``brute_force_limit`` profiles).
        starts: number of coordinate-ascent restarts.
        brute_force_limit: joint-space size threshold for ``'auto'``.

    Returns:
        ``(best_profile, best_welfare)``.
    """
    sizes = 1
    for space in strategy_spaces:
        if not space:
            raise GameError("every SC needs a non-empty strategy space")
        sizes *= len(space)
    if method == "auto":
        method = "brute" if sizes <= brute_force_limit else "ascent"
    if method == "brute":
        best_profile: tuple[int, ...] | None = None
        best_value = -math.inf
        for profile in _profiles(strategy_spaces):
            value = evaluator.welfare(profile, alpha)
            if value > best_value:
                best_value = value
                best_profile = tuple(profile)
        assert best_profile is not None
        return best_profile, best_value
    if method == "ascent":
        return _coordinate_ascent(evaluator, alpha, strategy_spaces, starts)
    raise GameError(f"unknown social-optimum method {method!r}")


def _coordinate_ascent(
    evaluator: UtilityEvaluator,
    alpha: float,
    strategy_spaces: Sequence[Sequence[int]],
    starts: int,
) -> tuple[tuple[int, ...], float]:
    starts = check_positive_int(starts, "starts")
    k = len(strategy_spaces)
    # Deterministic diverse starts: all-min, all-max, midpoints, staggered.
    candidates: list[tuple[int, ...]] = []
    mins = tuple(min(s) for s in strategy_spaces)
    maxs = tuple(max(s) for s in strategy_spaces)
    mids = tuple(sorted(s)[len(s) // 2] for s in strategy_spaces)
    for start in (mins, maxs, mids):
        if start not in candidates:
            candidates.append(start)
    stagger = tuple(
        sorted(space)[(i * len(space)) // max(k, 1) % len(space)]
        for i, space in enumerate(strategy_spaces)
    )
    if stagger not in candidates:
        candidates.append(stagger)
    best_profile = mins
    best_value = -math.inf
    for start in candidates[:starts]:
        profile = list(start)
        value = evaluator.welfare(profile, alpha)
        improved = True
        while improved:
            improved = False
            for i in range(k):
                current = profile[i]
                for candidate in strategy_spaces[i]:
                    if candidate == current:
                        continue
                    profile[i] = candidate
                    new_value = evaluator.welfare(profile, alpha)
                    if new_value > value:
                        value = new_value
                        current = candidate
                        improved = True
                    profile[i] = current
        if value > best_value:
            best_value = value
            best_profile = tuple(profile)
    return best_profile, best_value


def federation_efficiency(achieved: float, optimum: float) -> float:
    """Ratio of achieved to market-efficient welfare, per the paper.

    Conventions: a non-participating equilibrium (welfare 0 or ``-inf``)
    has efficiency 0; if the optimum itself is non-positive the market
    offers no surplus and efficiency is defined as 0.
    """
    if not math.isfinite(achieved) or achieved <= 0.0:
        return 0.0
    if not math.isfinite(optimum) or optimum <= 0.0:
        return 0.0
    return min(achieved / optimum, 1.0)
