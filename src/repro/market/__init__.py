"""Market economics of SC-Share (Sect. II-B and IV).

- :mod:`repro.market.cost` — the net operating cost, Eq. (1), and the
  no-sharing baseline ``C_i^0``.
- :mod:`repro.market.utility` — the SC utility, Eq. (2), with the paper's
  ``UF0``/``UF1`` special cases.
- :mod:`repro.market.fairness` — weighted α-fairness welfare, Eq. (3).
- :mod:`repro.market.evaluator` — a caching bridge from sharing vectors to
  costs/utilities through any performance model.
- :mod:`repro.market.pricing` — price-ratio grids for market sweeps.
- :mod:`repro.market.efficiency` — federation efficiency (achieved W over
  market-efficient W).
"""

from repro.market.cost import baseline_cost, baseline_metrics, operating_cost
from repro.market.efficiency import federation_efficiency, social_optimum
from repro.market.evaluator import UtilityEvaluator
from repro.market.extensions import (
    ExtendedUtilityEvaluator,
    PowerAwareCost,
    TransferAwareCost,
)
from repro.market.regions import analyze_regions
from repro.market.fairness import (
    ALPHA_MAX_MIN,
    ALPHA_PROPORTIONAL,
    ALPHA_UTILITARIAN,
    welfare,
)
from repro.market.pricing import price_ratio_grid
from repro.market.utility import UF0, UF1, utility

__all__ = [
    "ALPHA_MAX_MIN",
    "ALPHA_PROPORTIONAL",
    "ALPHA_UTILITARIAN",
    "UF0",
    "UF1",
    "UtilityEvaluator",
    "ExtendedUtilityEvaluator",
    "PowerAwareCost",
    "TransferAwareCost",
    "analyze_regions",
    "baseline_cost",
    "baseline_metrics",
    "federation_efficiency",
    "operating_cost",
    "price_ratio_grid",
    "social_optimum",
    "utility",
    "welfare",
]
