"""Cost-function extensions sketched in the paper's Sect. VII.

The base cost (Eq. 1) prices only SLA overflow.  The paper names three
future extensions; two are implemented here because they change the
economics without changing the performance models:

- **Power-aware cost** (:class:`PowerAwareCost`): running a VM locally
  has an energy cost; lending keeps a VM busy (the guest pays the energy
  through the federation price), while forwarding work out saves local
  energy.  Operators with expensive power prefer exporting load.
- **Data-transfer cost** (:class:`TransferAwareCost`): every request
  served remotely (federation or public cloud) pays a per-request
  transfer fee, penalizing excessive remote placement.

Both compose with the base cost and slot into the market game through
:class:`ExtendedUtilityEvaluator`, which overrides only the cost method
of the standard evaluator.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any, Callable

from repro._validation import check_non_negative, require
from repro.core.small_cloud import FederationScenario, SmallCloud
from repro.market.cost import operating_cost
from repro.market.evaluator import UtilityEvaluator
from repro.perf.base import PerformanceModel
from repro.perf.params import PerformanceParams

#: An extension cost function: ``(cloud, params) -> cost``.
CostFunction = Callable[[SmallCloud, PerformanceParams], float]


class PowerAwareCost:
    """Eq. (1) plus the energy cost of busy local VMs.

    Args:
        energy_price: cost per busy-VM-second of local electricity.
    """

    def __init__(self, energy_price: float) -> None:
        self.energy_price = check_non_negative(energy_price, "energy_price")

    def __call__(self, cloud: SmallCloud, params: PerformanceParams) -> float:
        busy_vms = params.utilization * cloud.vms
        return operating_cost(cloud, params) + self.energy_price * busy_vms


class TransferAwareCost:
    """Eq. (1) plus a per-remote-request data-transfer fee.

    Args:
        transfer_price: cost per VM-second of remotely served work
            (borrowed VMs and public-cloud forwards both pay it).
    """

    def __init__(self, transfer_price: float) -> None:
        self.transfer_price = check_non_negative(transfer_price, "transfer_price")

    def __call__(self, cloud: SmallCloud, params: PerformanceParams) -> float:
        remote_work = params.borrowed_mean + params.forward_rate / cloud.service_rate
        return operating_cost(cloud, params) + self.transfer_price * remote_work


class ExtendedUtilityEvaluator(UtilityEvaluator):
    """A :class:`UtilityEvaluator` with a pluggable cost function.

    The baseline cost is adjusted consistently: the no-sharing reference
    is re-priced through the same extension (with zero lending/borrowing),
    so the Eq. (2) cost *reduction* compares like with like.

    Args:
        cost_function: callable ``(cloud, params) -> cost`` (one of the
            extension classes above, or any custom callable).
        **kwargs: forwarded to :class:`UtilityEvaluator`.
    """

    def __init__(
        self,
        scenario: FederationScenario,
        model: PerformanceModel,
        cost_function: CostFunction,
        **kwargs: Any,
    ) -> None:
        require(callable(cost_function), "cost_function must be callable")
        super().__init__(scenario, model, **kwargs)
        self.cost_function = cost_function
        self._extended_baselines = [
            self._baseline_extended(i) for i in range(len(scenario))
        ]

    def _baseline_extended(self, index: int) -> float:
        base = self.baseline(index)
        cloud = self.scenario[index].with_shared(0)
        params = PerformanceParams(
            lent_mean=0.0,
            borrowed_mean=0.0,
            forward_rate=base.forward_rate,
            utilization=base.utilization,
        )
        return self.cost_function(cloud, params)

    def cost(
        self, sharing: Sequence[int], index: int, deviation: int | None = None
    ) -> float:
        """Extended cost of SC ``index`` under ``sharing``.

        ``deviation`` is the base evaluator's incremental-reuse hint; the
        extended cost prices from the full parameter vector, so the hint
        is accepted for interface compatibility but has nothing to skip.
        """
        cloud = self.scenario[index].with_shared(int(sharing[index]))
        return self.cost_function(cloud, self.params(sharing)[index])

    def utility(
        self, sharing: Sequence[int], index: int, deviation: int | None = None
    ) -> float:
        """Eq. (2) utility against the consistently extended baseline."""
        from repro.market.utility import utility as utility_fn

        if sharing[index] == 0:
            return 0.0
        base = self.baseline(index)
        params = self.params(sharing)[index]
        return utility_fn(
            baseline_cost=self._extended_baselines[index],
            cost=self.cost(sharing, index),
            baseline_utilization=base.utilization,
            utilization=params.utilization,
            gamma=self.gamma,
        )
