"""Deterministic per-task seed derivation for parallel workloads.

Parallel tasks must not share random streams, and the derived streams
must not depend on scheduling order — the seed of task ``i`` is a pure
function of ``(master_seed, i)``.  Derivation goes through
:class:`numpy.random.SeedSequence`, the same mechanism
:class:`repro.sim.rng.RandomStreams` uses to split one master seed into
independent component streams, so task-level and component-level
splitting compose cleanly: task ``i`` gets a derived seed, and the
simulator it runs spawns its per-component streams from that seed
exactly as it would in a serial run.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro._validation import check_non_negative_int, check_positive_int
from repro.exceptions import ConfigurationError
from repro.sim.rng import RandomStreams

#: Derived seeds fit in a non-negative signed 64-bit range so they can be
#: stored in JSON, passed through argparse, and fed back as master seeds.
_SEED_BITS = 63


def _encode_token(token: int | str) -> int:
    """Map a task token to a stable non-negative integer."""
    if isinstance(token, bool) or not isinstance(token, (int, str)):
        raise ConfigurationError(f"seed tokens must be int or str, got {token!r}")
    if isinstance(token, int):
        return check_non_negative_int(token, "seed token")
    digest = hashlib.sha256(token.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def derive_seed(master_seed: int, task: int | str) -> int:
    """The seed of one task: a pure function of ``(master_seed, task)``.

    Args:
        master_seed: the experiment's master seed.
        task: task identity — an index or a stable string label.
    """
    master_seed = check_non_negative_int(master_seed, "master_seed")
    sequence = np.random.SeedSequence([master_seed, _encode_token(task)])
    words = sequence.generate_state(2, np.uint32)
    return (int(words[0]) << 32 | int(words[1])) & ((1 << _SEED_BITS) - 1)


def derive_seeds(master_seed: int, count: int) -> list[int]:
    """Seeds for ``count`` tasks: ``derive_seed(master_seed, i)`` per task."""
    count = check_positive_int(count, "count")
    return [derive_seed(master_seed, i) for i in range(count)]


def derive_streams(master_seed: int, count: int) -> list[RandomStreams]:
    """One independent :class:`RandomStreams` factory per task."""
    return [RandomStreams(seed) for seed in derive_seeds(master_seed, count)]


def replication_seeds(base_seed: int, count: int, scheme: str = "offset") -> list[int]:
    """Per-replication seeds under a named scheme.

    Args:
        base_seed: the experiment seed.
        count: number of replications.
        scheme: ``'offset'`` reproduces the historical ``base_seed + r``
            convention (kept as the default so archived results stay
            bit-identical); ``'spawn'`` derives statistically independent
            seeds via :func:`derive_seeds`, which is preferable for new
            experiments with many replications.
    """
    base_seed = check_non_negative_int(base_seed, "base_seed")
    count = check_positive_int(count, "count")
    if scheme == "offset":
        return [base_seed + r for r in range(count)]
    if scheme == "spawn":
        return derive_seeds(base_seed, count)
    raise ConfigurationError(f"unknown seed scheme {scheme!r}")
