"""Persistent on-disk cache of performance-model solutions.

Performance parameters depend only on the performance-relevant scenario
content — per-SC VM counts, arrival/service rates, SLA bounds — the
sharing vector, and the model (type and tolerances).  They never depend
on prices or SC names.  The cache keys on a content hash of exactly those
inputs, so a populated cache survives renames, price sweeps, process
restarts, and concurrent writers.

Two views over one store:

- :class:`DiskParamsCache` — a ``MutableMapping`` from sharing vectors to
  per-SC parameter lists, a drop-in persistent extension of the
  in-memory ``ParamsCache`` consumed by
  :class:`repro.market.evaluator.UtilityEvaluator`;
- :class:`CachedModel` — wraps any :class:`~repro.perf.base.PerformanceModel`
  so that ``evaluate`` / ``evaluate_target`` calls (the shape the fig6
  validation harness uses) hit the same store.

Writes are atomic (temp file + ``os.replace``), so concurrent writers —
process-pool workers sharing one ``--cache-dir`` — can never interleave
partial JSON; a corrupt or foreign file is treated as a miss and
removed, then rewritten by the next solve.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from collections.abc import Iterator, Mapping, MutableMapping, Sequence
from pathlib import Path
from typing import Any

from repro import obs
from repro._validation import require
from repro.analysis import sanitize

# ``core.serialization`` imports ``repro.perf``, whose package init pulls
# the approximate model and, through it, ``repro.runtime`` — so a
# module-level import here would close an import cycle whenever
# serialization is imported first (the CLI does).  Import lazily instead.
from repro.core.small_cloud import FederationScenario
from repro.perf.base import PerformanceModel
from repro.perf.params import PerformanceParams
from repro.runtime.memo import LRUCache

#: Bump when the payload layout changes; older entries become misses.
#: Version 2 added the mandatory ``digest`` content hash.
CACHE_FORMAT_VERSION = 2

#: Per-SC fields that determine performance (prices and names do not).
_PERF_FIELDS = ("vms", "arrival_rate", "service_rate", "sla_bound")


def model_fingerprint(model: PerformanceModel) -> str:
    """A stable identity string for a model's type and configuration.

    Scalar public attributes (tolerances, horizons, seeds) are part of
    the identity; non-scalar attributes (executors, wrapped caches) are
    runtime plumbing that cannot change the solution, so they are not.
    """
    config = {
        name: value
        for name, value in sorted(vars(model).items())
        if not name.startswith("_") and isinstance(value, (bool, int, float, str))
    }
    return f"{type(model).__qualname__}:{json.dumps(config, sort_keys=True)}"


def scenario_fingerprint(
    scenario: FederationScenario, include_sharing: bool = True
) -> str:
    """Content hash of a scenario's performance-relevant fields.

    Args:
        scenario: the federation.
        include_sharing: include the sharing vector (``False`` gives the
            base fingerprint that :class:`DiskParamsCache` combines with
            per-key sharing vectors).
    """
    payload: dict = {
        "clouds": [
            [getattr(cloud, field) for field in _PERF_FIELDS] for cloud in scenario
        ]
    }
    if include_sharing:
        payload["sharing"] = list(scenario.sharing_vector())
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode("utf-8")
    ).hexdigest()
    return digest


def payload_digest(payload: Mapping[str, Any]) -> str:
    """Content hash of a cache payload (the ``digest`` field excluded)."""
    content = {name: value for name, value in payload.items() if name != "digest"}
    return hashlib.sha256(
        json.dumps(content, sort_keys=True).encode("utf-8")
    ).hexdigest()


class DiskCache:
    """Low-level atomic JSON store: hash key -> payload dictionary.

    Holds only its root path, so it pickles cheaply into process-pool
    task payloads; every worker writing into the same directory is safe
    because entries land via ``os.replace``.

    Every payload carries a ``digest`` content hash computed at store
    time.  ``load`` recomputes it and *rejects* payloads whose schema
    version or digest mismatches — a tampered or bit-rotted entry that
    still parses as JSON is a miss (and an
    :class:`~repro.analysis.sanitize.InvariantViolation` when the
    sanitizer is active), never silently deserialized.
    """

    def __init__(self, root: str | Path) -> None:
        require(str(root).strip() != "", "cache root must be a non-empty path")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def load(self, key: str) -> dict[str, Any] | None:
        """Payload stored under ``key``, or ``None`` (corrupt, stale, or
        tampered files are discarded so the next solve rewrites them)."""
        path = self._path(key)
        try:
            payload = json.loads(path.read_text())
        except FileNotFoundError:
            obs.inc("runtime.disk_cache.miss")
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            self._discard(path)
            obs.inc("runtime.disk_cache.miss")
            return None
        if not isinstance(payload, dict) or payload.get("version") != CACHE_FORMAT_VERSION:
            self._discard(path)
            obs.inc("runtime.disk_cache.miss")
            return None
        stored = payload.get("digest")
        expected = payload_digest(payload)
        if stored != expected:
            sanitize.check_cache_payload(
                payload,
                expected_digest=expected,
                stored_digest=stored if isinstance(stored, str) else "<missing>",
                label=f"disk-cache[{key}]",
            )
            self._discard(path)
            obs.inc("runtime.disk_cache.miss")
            return None
        obs.inc("runtime.disk_cache.hit")
        return payload

    def store(self, key: str, payload: dict[str, Any]) -> None:
        """Atomically write ``payload`` under ``key`` with its digest."""
        payload = {"version": CACHE_FORMAT_VERSION, **payload}
        payload["digest"] = payload_digest(payload)
        obs.inc("runtime.disk_cache.store")
        fd, tmp_name = tempfile.mkstemp(
            prefix=f".{key}.", suffix=".tmp", dir=self.root
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle)
            os.replace(tmp_name, self._path(key))
        except BaseException:
            self._discard(Path(tmp_name))
            raise

    def discard(self, key: str) -> bool:
        """Remove the entry for ``key``; returns whether it existed."""
        path = self._path(key)
        existed = path.exists()
        self._discard(path)
        return existed

    def keys(self) -> list[str]:
        """Hash keys of all entries currently on disk."""
        return sorted(path.stem for path in self.root.glob("*.json"))

    @staticmethod
    def _discard(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass


def _decode_params(payload: dict) -> list[PerformanceParams] | None:
    from repro.core.serialization import params_from_dict

    try:
        return [params_from_dict(entry) for entry in payload["params"]]
    except Exception:
        return None


class DiskParamsCache(MutableMapping):
    """Persistent ``ParamsCache``: sharing vector -> per-SC parameters.

    A drop-in for the in-memory dictionary
    :class:`repro.market.evaluator.UtilityEvaluator` keeps — pass an
    instance as ``params_cache`` and every solved sharing vector persists
    to ``root``.  An in-memory :class:`~repro.runtime.memo.LRUCache`
    fronts the disk store, so repeated hits inside one run cost a dict
    lookup; long equilibrium searches can bound it with ``memory_size``.

    Entries are namespaced by the scenario's base fingerprint and the
    model fingerprint: caches for different federations, tolerances, or
    model types share a directory without collisions.

    Args:
        root: cache directory (created if missing).
        scenario: the federation the cached parameters describe (prices
            and the scenario's own sharing values are irrelevant).
        model: the model producing the parameters.
        memory_size: capacity of the in-memory front (``None`` for
            unbounded).  Evicted entries are still on disk, so bounding
            only trades lookup latency for memory.
        namespace: optional extra namespace component mixed into every
            key and payload.  The scenario library passes the scenario's
            content hash here (``scenario:<hash>``) so runs of different
            library entries that happen to share performance-relevant
            fields still keep disjoint cache populations.
    """

    def __init__(
        self,
        root: str | Path,
        scenario: FederationScenario,
        model: PerformanceModel,
        memory_size: int | None = None,
        namespace: str | None = None,
    ) -> None:
        require(
            isinstance(scenario, FederationScenario),
            f"scenario must be a FederationScenario, got {type(scenario).__name__}",
        )
        require(
            isinstance(model, PerformanceModel),
            f"model must be a PerformanceModel, got {type(model).__name__}",
        )
        self._store = DiskCache(root)
        self._scenario_key = scenario_fingerprint(  # fingerprint-input: _hash
            scenario, include_sharing=False
        )
        self._model_key = model_fingerprint(model)  # fingerprint-input: _hash
        self._namespace = str(namespace) if namespace else ""  # fingerprint-input: _hash
        self._size = len(scenario)
        self._memory: LRUCache[tuple[int, ...], list[PerformanceParams]] = LRUCache(
            maxsize=memory_size, name="runtime.params_memory"
        )

    def _hash(self, sharing: tuple[int, ...]) -> str:
        blob = json.dumps(
            {
                "kind": "params",
                "scenario": self._scenario_key,
                "model": self._model_key,
                "namespace": self._namespace,
                "sharing": list(sharing),
            },
            sort_keys=True,
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:40]

    def _normalize(self, key: Sequence[int]) -> tuple[int, ...]:
        return tuple(int(s) for s in key)

    def _namespace_matches(self, payload: Mapping[str, Any], sharing: tuple[int, ...]) -> bool:
        return (
            payload.get("kind") == "params"
            and payload.get("scenario") == self._scenario_key
            and payload.get("model") == self._model_key
            and payload.get("namespace", "") == self._namespace
            and payload.get("sharing") == list(sharing)
        )

    def __getitem__(self, key: Sequence[int]) -> list[PerformanceParams]:
        sharing = self._normalize(key)
        cached = self._memory.get(sharing)
        if cached is not None:
            return cached
        payload = self._store.load(self._hash(sharing))
        if payload is None:
            raise KeyError(sharing)
        if not self._namespace_matches(payload, sharing):
            # The entry parsed and passed its digest but describes a
            # different scenario/model/sharing vector — a renamed or
            # copied file.  Reject it rather than deserialize foreign
            # parameters into this run.
            if sanitize.sanitize_enabled():
                raise sanitize.InvariantViolation(
                    "cache-namespace",
                    "cache entry does not match the requested "
                    f"scenario/model/sharing {sharing}",
                    {
                        "sharing": sharing,
                        "payload_kind": payload.get("kind"),
                        "payload_sharing": payload.get("sharing"),
                    },
                )
            self._store.discard(self._hash(sharing))
            raise KeyError(sharing)
        params = _decode_params(payload)
        if params is None or len(params) != self._size:
            self._store.discard(self._hash(sharing))
            raise KeyError(sharing)
        if sanitize.sanitize_enabled():
            for i, entry in enumerate(params):
                sanitize.check_params(entry, label=f"cache-params[{sharing}][{i}]")
        self._memory.put(sharing, params)
        return params

    def __setitem__(self, key: Sequence[int], value: list[PerformanceParams]) -> None:
        from repro.core.serialization import params_to_dict

        sharing = self._normalize(key)
        self._memory.put(sharing, list(value))
        self._store.store(
            self._hash(sharing),
            {
                "kind": "params",
                "scenario": self._scenario_key,
                "model": self._model_key,
                "namespace": self._namespace,
                "sharing": list(sharing),
                "params": [params_to_dict(p) for p in value],
            },
        )

    def __delitem__(self, key: Sequence[int]) -> None:
        sharing = self._normalize(key)
        in_memory = self._memory.pop(sharing)
        on_disk = self._store.discard(self._hash(sharing))
        if in_memory is None and not on_disk:
            raise KeyError(sharing)

    def _disk_keys(self) -> list[tuple[int, ...]]:
        found = []
        for key in self._store.keys():
            payload = self._store.load(key)
            if (
                payload is not None
                and payload.get("kind") == "params"
                and payload.get("scenario") == self._scenario_key
                and payload.get("model") == self._model_key
                and payload.get("namespace", "") == self._namespace
                and isinstance(payload.get("sharing"), list)
            ):
                found.append(tuple(int(s) for s in payload["sharing"]))
        return found

    def __iter__(self) -> Iterator[tuple[int, ...]]:
        mem_keys = self._memory.keys()
        seen = set(mem_keys)
        yield from mem_keys
        for sharing in self._disk_keys():
            if sharing not in seen:
                seen.add(sharing)
                yield sharing

    def __len__(self) -> int:
        return len(set(self._memory.keys()) | set(self._disk_keys()))


class CachedModel(PerformanceModel):
    """A persistent read-through cache around any performance model.

    ``evaluate`` and ``evaluate_target`` consult the store before
    delegating; misses are solved by the wrapped model and written back.
    Wrapping changes nothing observable but latency: cached entries are
    the exact floats the wrapped model produced.

    Attributes:
        hits: store hits served so far.
        misses: delegated solves so far.
    """

    def __init__(self, model: PerformanceModel, cache: DiskCache | str | Path) -> None:
        require(
            isinstance(model, PerformanceModel),
            f"model must be a PerformanceModel, got {type(model).__name__}",
        )
        self.model = model  # fingerprint-input: _hash
        self.store = cache if isinstance(cache, DiskCache) else DiskCache(cache)
        self.hits = 0
        self.misses = 0

    def _hash(self, scenario: FederationScenario, target: int | None) -> str:
        blob = json.dumps(
            {
                "kind": "model",
                "scenario": scenario_fingerprint(scenario),
                "model": model_fingerprint(self.model),
                "target": target,
            },
            sort_keys=True,
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:40]

    def evaluate(self, scenario: FederationScenario) -> list[PerformanceParams]:
        from repro.core.serialization import params_to_dict

        key = self._hash(scenario, target=None)
        payload = self.store.load(key)
        if payload is not None:
            params = _decode_params(payload)
            if params is not None and len(params) == len(scenario):
                self.hits += 1
                obs.inc("runtime.cached_model.hit")
                return params
            self.store.discard(key)
        params = self.model.evaluate(scenario)
        self.misses += 1
        obs.inc("runtime.cached_model.miss")
        self.store.store(key, {"params": [params_to_dict(p) for p in params]})
        return params

    def evaluate_target(
        self,
        scenario: FederationScenario,
        target: int | None = None,
        deviation: int | None = None,
    ) -> PerformanceParams:
        from repro.core.serialization import params_to_dict

        index = len(scenario) - 1 if target is None else int(target)
        # The deviation hint is observational (it may never change
        # results), so it is forwarded to the inner model but excluded
        # from the content hash.
        key = self._hash(scenario, target=index)
        payload = self.store.load(key)
        if payload is not None:
            params = _decode_params(payload)
            if params is not None and len(params) == 1:
                self.hits += 1
                obs.inc("runtime.cached_model.hit")
                return params[0]
            self.store.discard(key)
        result = self.model.evaluate_target(scenario, index, deviation=deviation)
        self.misses += 1
        obs.inc("runtime.cached_model.miss")
        self.store.store(key, {"params": [params_to_dict(result)]})
        return result
