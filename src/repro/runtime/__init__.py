"""Parallel evaluation runtime and persistent model cache.

The hot loops of the reproduction — approximate-model target rotation,
Tabu neighborhood scoring, best-response rounds, simulation replications
— are all embarrassingly parallel over independent deterministic tasks.
This package supplies the shared machinery:

- :mod:`repro.runtime.executor` — ``SerialExecutor`` / ``ThreadExecutor``
  / ``ProcessExecutor`` behind one ``map`` / ``map_unordered`` interface
  with chunking and graceful serial fallback;
- :mod:`repro.runtime.seeding` — deterministic per-task seed derivation
  built on the same ``SeedSequence`` discipline as :mod:`repro.sim.rng`;
- :mod:`repro.runtime.cache` — a persistent on-disk parameter cache
  (content-hash keys over the performance-relevant scenario fields) that
  extends the in-memory ``ParamsCache`` of :mod:`repro.market.evaluator`
  and wraps any :class:`~repro.perf.base.PerformanceModel`;
- :mod:`repro.runtime.memo` — a bounded thread-safe in-memory ``LRUCache``
  for expensive intermediates (the approximate model's level-prefix
  cache, the disk cache's in-memory front).

Everything is engineered so that parallel and cached runs are
*bit-identical* to serial uncached runs: executors preserve input order,
tasks derive independent seeds deterministically, and caches store the
exact float values a fresh solve would produce.
"""

from repro.runtime.cache import (
    CachedModel,
    DiskCache,
    DiskParamsCache,
    model_fingerprint,
    scenario_fingerprint,
)
from repro.runtime.executor import (
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    make_executor,
)
from repro.runtime.memo import LRUCache
from repro.runtime.seeding import derive_seed, derive_seeds, derive_streams, replication_seeds

__all__ = [
    "CachedModel",
    "DiskCache",
    "DiskParamsCache",
    "Executor",
    "LRUCache",
    "ProcessExecutor",
    "SerialExecutor",
    "ThreadExecutor",
    "derive_seed",
    "derive_seeds",
    "derive_streams",
    "make_executor",
    "model_fingerprint",
    "replication_seeds",
    "scenario_fingerprint",
]
