"""Executor abstraction: serial, thread, and process map with one interface.

All executors satisfy the same small contract:

- ``map(fn, items)`` returns ``[fn(x) for x in items]`` *in input order*,
  so a parallel run is result-identical to a serial one;
- ``map_unordered(fn, items)`` yields ``(index, result)`` pairs as they
  complete (in input order for the serial executor);
- ``workers`` reports the parallel width (1 for serial).

Pools are created per call rather than held on the executor.  That keeps
executor objects trivially picklable (they can ride inside task payloads
or model configs), and makes nested parallelism safe: an inner ``map``
issued from a worker gets a fresh pool instead of deadlocking on the
outer one.

:class:`ProcessExecutor` degrades gracefully: when the function or the
items cannot be pickled (closures over live caches, objects holding
locks), it runs the batch serially in the parent process — which is
exactly what shared-state callers need for correctness — instead of
crashing the pool.
"""

from __future__ import annotations

import concurrent.futures
import os
import pickle
import time
from abc import ABC, abstractmethod
from collections.abc import Callable, Iterator, Sequence
from typing import TypeVar

from repro import obs
from repro._validation import check_positive_int
from repro.analysis import sanitize
from repro.exceptions import ConfigurationError

T = TypeVar("T")
R = TypeVar("R")


def _worker_bootstrap(sanitize_active: bool, metrics_active: bool = False) -> None:
    """Per-process initializer run once in every spawned pool worker.

    The sanitizer switch is module-level state, so a worker spawned after
    a programmatic :func:`repro.analysis.sanitize.sanitize_enable` (the
    ``--sanitize`` CLI path) would start with it *off* and silently skip
    every invariant check.  The parent captures its switch at pool
    creation and replays it here; the environment variable is also set so
    any grandchild processes inherit the setting.

    The observability *metrics* switch gets the same replay: a worker
    whose hooks stayed off would return empty snapshots and the merged
    totals would silently undercount.  Tracing is deliberately NOT
    replayed — spans are per-process and workers contribute metrics
    snapshots, not span trees (see :mod:`repro.obs`).
    """
    if sanitize_active:
        os.environ[sanitize.SANITIZE_ENV_VAR] = "1"
        sanitize.sanitize_enable()
    if metrics_active:
        obs.obs_enable(tracing=False, metrics=True)


def _count_batch(n_items: int) -> None:
    """Record one dispatched batch.

    Deliberately identical on every backend (the serial executor counts
    the same batches a pool would), so merged counter totals are
    backend-independent — the property the differential checker's
    metrics-merge section asserts.
    """
    obs.inc("runtime.executor.batches")
    obs.inc("runtime.executor.tasks", n_items)


def default_workers() -> int:
    """A sensible parallel width for this machine (``os.cpu_count()``)."""
    return max(os.cpu_count() or 1, 1)


class Executor(ABC):
    """Common interface of all executors."""

    #: Parallel width; 1 means the executor runs tasks inline.
    workers: int = 1

    @abstractmethod
    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        """Apply ``fn`` to every item, returning results in input order."""

    @abstractmethod
    def map_unordered(
        self, fn: Callable[[T], R], items: Sequence[T]
    ) -> Iterator[tuple[int, R]]:
        """Yield ``(index, fn(items[index]))`` pairs as tasks complete."""

    def chunksize(self, n_items: int) -> int:
        """Chunk size used when shipping ``n_items`` tasks to a pool.

        Four chunks per worker amortizes dispatch overhead while keeping
        the pool load-balanced when task durations vary.
        """
        return max(1, n_items // (self.workers * 4))


class SerialExecutor(Executor):
    """Runs every task inline, in order.  The reference semantics."""

    workers = 1

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        items = list(items)
        if len(items) <= 1:
            return [fn(item) for item in items]
        with obs.span("runtime.map", backend="serial", tasks=len(items)):
            _count_batch(len(items))
            start = time.perf_counter()
            results = [fn(item) for item in items]
            obs.observe("runtime.batch_seconds", time.perf_counter() - start)
            return results

    def map_unordered(
        self, fn: Callable[[T], R], items: Sequence[T]
    ) -> Iterator[tuple[int, R]]:
        for index, item in enumerate(items):
            yield index, fn(item)


class ThreadExecutor(Executor):
    """Thread-pool executor.

    Threads share memory, so callables may close over live state (the
    evaluator's parameter cache, a Tabu value table) — callers are
    responsible for the thread safety of that state.  Best suited to
    workloads that release the GIL (scipy solves, simulation inner loops)
    or that mix I/O with compute.
    """

    def __init__(self, workers: int | None = None) -> None:
        self.workers = check_positive_int(
            workers if workers is not None else default_workers(), "workers"
        )

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        items = list(items)
        if len(items) <= 1:
            return [fn(item) for item in items]
        with obs.span("runtime.map", backend="thread", tasks=len(items)):
            _count_batch(len(items))
            start = time.perf_counter()
            if self.workers <= 1:
                results = [fn(item) for item in items]
            else:
                with concurrent.futures.ThreadPoolExecutor(
                    max_workers=self.workers
                ) as pool:
                    results = list(pool.map(fn, items))
            obs.observe("runtime.batch_seconds", time.perf_counter() - start)
            return results

    def map_unordered(
        self, fn: Callable[[T], R], items: Sequence[T]
    ) -> Iterator[tuple[int, R]]:
        items = list(items)
        if self.workers <= 1 or len(items) <= 1:
            for index, item in enumerate(items):
                yield index, fn(item)
            return
        _count_batch(len(items))
        with concurrent.futures.ThreadPoolExecutor(max_workers=self.workers) as pool:
            submitted = time.perf_counter()
            futures = {pool.submit(fn, item): i for i, item in enumerate(items)}
            for future in concurrent.futures.as_completed(futures):
                obs.observe(
                    "runtime.task_turnaround_seconds",
                    time.perf_counter() - submitted,
                )
                yield futures[future], future.result()


class ProcessExecutor(Executor):
    """Process-pool executor with serial fallback.

    Processes sidestep the GIL, so this is the right executor for pure
    CPU-bound tasks built from picklable pieces (model + scenario
    payloads, simulator replications).  Results flow back by value; any
    in-memory cache a worker fills stays in the worker, so shared-state
    workloads gain nothing — and since those are exactly the workloads
    whose closures fail to pickle, they fall back to correct serial
    execution automatically.
    """

    def __init__(self, workers: int | None = None) -> None:
        self.workers = check_positive_int(
            workers if workers is not None else default_workers(), "workers"
        )

    def _picklable(self, fn: Callable, items: Sequence) -> bool:
        try:
            pickle.dumps(fn)
            if items:
                pickle.dumps(items[0])
        except Exception:
            return False
        return True

    def _pool(self) -> concurrent.futures.ProcessPoolExecutor:
        return concurrent.futures.ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=_worker_bootstrap,
            initargs=(sanitize.sanitize_enabled(), obs.metrics_active()),
        )

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        items = list(items)
        if len(items) <= 1:
            return [fn(item) for item in items]
        with obs.span("runtime.map", backend="process", tasks=len(items)):
            _count_batch(len(items))
            start = time.perf_counter()
            if self.workers <= 1 or not self._picklable(fn, items):
                if self.workers > 1:
                    obs.inc("runtime.executor.pickle_fallback")
                results = [fn(item) for item in items]
            else:
                with self._pool() as pool:
                    results = list(
                        pool.map(fn, items, chunksize=self.chunksize(len(items)))
                    )
            obs.observe("runtime.batch_seconds", time.perf_counter() - start)
            return results

    def map_unordered(
        self, fn: Callable[[T], R], items: Sequence[T]
    ) -> Iterator[tuple[int, R]]:
        items = list(items)
        if self.workers <= 1 or len(items) <= 1 or not self._picklable(fn, items):
            for index, item in enumerate(items):
                yield index, fn(item)
            return
        _count_batch(len(items))
        with self._pool() as pool:
            submitted = time.perf_counter()
            futures = {pool.submit(fn, item): i for i, item in enumerate(items)}
            for future in concurrent.futures.as_completed(futures):
                obs.observe(
                    "runtime.task_turnaround_seconds",
                    time.perf_counter() - submitted,
                )
                yield futures[future], future.result()


def make_executor(workers: int | None, kind: str = "auto") -> Executor:
    """Build an executor from a ``--workers`` style setting.

    Args:
        workers: parallel width; ``None``, 0 or 1 yields the serial
            executor (``None`` with an explicit parallel ``kind`` uses
            all cores).
        kind: ``'serial'``, ``'thread'``, ``'process'``, or ``'auto'``
            (process-based — the safe general-purpose choice, since
            shared-state call sites degrade to serial on their own).
    """
    if kind not in ("auto", "serial", "thread", "process"):
        raise ConfigurationError(f"unknown executor kind {kind!r}")
    if workers is not None and workers <= 1:
        return SerialExecutor()
    if kind == "serial" or (workers is None and kind == "auto"):
        return SerialExecutor()
    if kind == "thread":
        return ThreadExecutor(workers)
    return ProcessExecutor(workers)
