"""In-memory LRU memoization tier.

The disk cache (:mod:`repro.runtime.cache`) persists *finished* model
solutions across processes; this module supplies the layer underneath
it: a bounded, thread-safe, in-memory LRU for expensive intermediate
objects that are pure functions of a content key but too large or too
short-lived to serialize.  The first consumer is the approximate model's
level-prefix cache (:mod:`repro.perf.approximate`), which memoizes
solved hierarchy levels keyed by the ordered prefix of
``(cloud spec, pool)`` pairs; :class:`repro.runtime.cache.DiskParamsCache`
can also bound its in-memory front with one.

Design constraints inherited from the runtime package:

- **Thread safety** — Tabu neighborhood scoring runs objectives on
  thread executors, so one model instance may be queried concurrently.
  All operations take an internal lock; ``get_or_create`` is
  *single-flight* per key (the same per-key event pattern
  ``UtilityEvaluator`` uses): the first caller of a missing key becomes
  the owner and runs the factory outside the lock, concurrent callers of
  the same key wait for the owner's publish instead of duplicating the
  build.  The ``duplicate_builds`` counter records publishes that found
  a value already present (the race harness asserts it stays zero).
- **Process-pool friendliness** — executors pickle models into task
  payloads.  A lock is unpicklable and a cache full of sparse matrices
  is expensive to ship, so pickling an :class:`LRUCache` deliberately
  transfers only its configuration: workers start cold and warm up
  locally.
- **Determinism** — the cache stores exactly the object the factory
  produced; a hit returns the same floats a cold rebuild would, so
  cached and uncached runs are bit-identical.
- **Key soundness** — entries are only as correct as the keys callers
  build.  Every key must be a pure function of content: the RPR3xx
  dataflow lint (:mod:`repro.analysis.dataflow`) statically checks the
  fingerprint functions feeding this tier for omitted inputs (declared
  with ``# fingerprint-input:``), environment/thread taint, and
  unordered-iteration order; run it before trusting a new key shape.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Callable, Hashable
from typing import Any, Generic, TypeVar

from repro import obs
from repro._validation import require

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


class LRUCache(Generic[K, V]):
    """A bounded, thread-safe mapping with least-recently-used eviction.

    Args:
        maxsize: capacity in entries; ``None`` means unbounded (the
            cache then degenerates to a thread-safe dict with stats).
        name: optional metric namespace.  A named cache reports
            ``<name>.hit`` / ``<name>.miss`` / ``<name>.eviction``
            counters through :mod:`repro.obs` (no-ops unless metrics are
            enabled); unnamed caches pay one ``None`` check per
            operation and emit nothing.

    Attributes:
        hits: successful lookups so far.
        misses: failed lookups so far.
        duplicate_builds: ``get_or_create`` publishes that found the key
            already cached (zero under the single-flight discipline).
    """

    def __init__(self, maxsize: int | None = 128, name: str | None = None) -> None:
        if maxsize is not None:
            require(int(maxsize) >= 1, "LRUCache maxsize must be >= 1 or None")
            maxsize = int(maxsize)
        self.maxsize = maxsize
        self.name = name
        # Metric names are precomputed so the per-operation cost of an
        # enabled-metrics run is one counter add, not a string build.
        self._metric_hit = f"{name}.hit" if name else None
        self._metric_miss = f"{name}.miss" if name else None
        self._metric_eviction = f"{name}.eviction" if name else None
        self.hits = 0  # guarded-by: _lock
        self.misses = 0  # guarded-by: _lock
        self.duplicate_builds = 0  # guarded-by: _lock
        self._data: OrderedDict[K, V] = OrderedDict()  # guarded-by: _lock
        self._pending: dict[K, threading.Event] = {}  # guarded-by: _lock
        self._lock = threading.Lock()

    def get(self, key: K) -> V | None:
        """Return the cached value for ``key`` (refreshing its recency)
        or ``None`` on a miss."""
        with self._lock:
            try:
                value = self._data[key]
            except KeyError:
                self.misses += 1
                hit = False
            else:
                self._data.move_to_end(key)
                self.hits += 1
                hit = True
        if self._metric_hit is not None and self._metric_miss is not None:
            obs.inc(self._metric_hit if hit else self._metric_miss)
        return value if hit else None

    def _put_locked(self, key: K, value: V) -> int:
        """Insert under an already-held ``self._lock``; returns evictions."""
        self._data[key] = value
        self._data.move_to_end(key)
        evicted = 0
        if self.maxsize is not None:
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                evicted += 1
        return evicted

    def put(self, key: K, value: V) -> None:
        """Insert ``value`` under ``key``, evicting the least recently
        used entry if the cache is full."""
        with self._lock:
            evicted = self._put_locked(key, value)
        if evicted and self._metric_eviction is not None:
            obs.inc(self._metric_eviction, evicted)

    def get_or_create(self, key: K, factory: Callable[[], V]) -> V:
        """Return the cached value for ``key``, building it with
        ``factory`` on a miss.

        Single-flight per key: the first caller of a missing key owns the
        build and runs ``factory`` *outside* the lock (a slow build never
        blocks unrelated lookups); concurrent callers of the same key
        wait on the owner's event and read the published value instead of
        building again.  If the owner's factory raises, one waiter is
        promoted to owner and retries.  The factory must not re-enter
        ``get_or_create`` for the same key (that would self-deadlock);
        distinct keys are fine.
        """
        while True:
            with self._lock:
                try:
                    value = self._data[key]
                except KeyError:
                    pass
                else:
                    self._data.move_to_end(key)
                    self.hits += 1
                    if self._metric_hit is not None:
                        obs.inc(self._metric_hit)
                    return value
                event = self._pending.get(key)
                if event is None:
                    event = threading.Event()
                    self._pending[key] = event
                    self.misses += 1
                    owner = True
                else:
                    owner = False
            if not owner:
                event.wait()
                continue  # the owner has published (or failed); re-check
            if self._metric_miss is not None:
                obs.inc(self._metric_miss)
            try:
                value = factory()
                with self._lock:
                    if key in self._data:
                        self.duplicate_builds += 1
                    evicted = self._put_locked(key, value)
                if evicted and self._metric_eviction is not None:
                    obs.inc(self._metric_eviction, evicted)
                return value
            finally:
                with self._lock:
                    self._pending.pop(key, None)
                event.set()

    def ensure_capacity(self, minsize: int) -> None:
        """Grow ``maxsize`` to at least ``minsize`` (monotone; never
        shrinks, and an unbounded cache stays unbounded).

        The approximate model sizes its level-prefix cache this way: one
        federation of ``K`` SCs needs ``K`` live entries per chain and a
        Tabu neighborhood several chains' worth, so a fixed capacity
        that is generous at ``K=10`` thrashes at ``K=50``.  Growing is
        always safe — capacity never affects which value a key maps to,
        only how long it is retained."""
        minsize = int(minsize)
        require(minsize >= 1, "ensure_capacity minsize must be >= 1")
        with self._lock:
            if self.maxsize is not None and self.maxsize < minsize:
                self.maxsize = minsize

    def pop(self, key: K) -> V | None:
        """Remove and return the value under ``key`` (``None`` if absent);
        never counts toward hit/miss statistics."""
        with self._lock:
            return self._data.pop(key, None)

    def keys(self) -> list[K]:
        """A snapshot of the cached keys, least recently used first."""
        with self._lock:
            return list(self._data)

    def __contains__(self, key: K) -> bool:
        with self._lock:
            return key in self._data

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def clear(self) -> None:
        """Drop all entries (statistics are kept)."""
        with self._lock:
            self._data.clear()

    def stats(self) -> dict[str, int | None]:
        """A snapshot of the cache counters (for logs and benchmarks).

        Taken under the lock, so the snapshot is internally consistent:
        ``hits + misses`` equals the number of completed lookups at one
        instant, never a torn mix of two."""
        with self._lock:
            return {
                "size": len(self._data),
                "maxsize": self.maxsize,
                "hits": self.hits,
                "misses": self.misses,
                "duplicate_builds": self.duplicate_builds,
            }

    # -- pickling: ship configuration, not contents -------------------- #

    def __getstate__(self) -> dict[str, Any]:
        return {"maxsize": self.maxsize, "name": self.name}

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.maxsize = state["maxsize"]
        self.name = state.get("name")
        self._metric_hit = f"{self.name}.hit" if self.name else None
        self._metric_miss = f"{self.name}.miss" if self.name else None
        self._metric_eviction = f"{self.name}.eviction" if self.name else None
        self.hits = 0
        self.misses = 0
        self.duplicate_builds = 0
        self._data = OrderedDict()
        self._pending = {}
        self._lock = threading.Lock()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LRUCache(size={len(self)}, maxsize={self.maxsize})"
