"""Setup shim.

The execution environment has no network and no ``wheel`` package, so the
PEP 660 editable-install path (which builds a wheel) is unavailable.  This
shim lets ``pip install -e .`` fall back to the legacy ``setup.py develop``
path.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
